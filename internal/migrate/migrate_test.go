package migrate

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cop/internal/core"
	"cop/internal/faultsim"
	"cop/internal/memctrl"
	"cop/internal/reliability"
	"cop/internal/shard"
	"cop/internal/workload"
)

// compressibleWorkload registers (once) a fully compressible content
// profile: every block is small-integer data, inside every COP geometry's
// compression threshold, so plain COP protects the whole footprint and a
// single-bit campaign must contain zero silent corruptions even while the
// geometry is being migrated underneath it.
var compressibleOnce sync.Once

func compressibleWorkload(t *testing.T) string {
	t.Helper()
	compressibleOnce.Do(func() {
		if _, err := workload.RegisterCustom(workload.Profile{
			Name:            "migrate-smallint",
			Mix:             workload.ContentMix{SmallInt: 1},
			FootprintBlocks: 4096, MPKI: 1, PerfectIPC: 1,
		}); err != nil {
			panic(err)
		}
	})
	return "migrate-smallint"
}

func newBatched(s Scheme, shards int) *shard.Batched {
	return shard.NewBatched(shard.BatchedConfig{
		Shard: shard.Config{
			Mem:    memctrl.Config{Mode: s.Mode, COPConfig: s.COP, LLCBytes: 32 * 1024, LLCWays: 8},
			Shards: shards,
		},
		RingSize: 32,
		BatchMax: 8,
	})
}

func mustScheme(t *testing.T, name string) Scheme {
	t.Helper()
	s, ok := Lookup(name)
	if !ok {
		t.Fatalf("scheme %q not registered", name)
	}
	return s
}

// TestMigrationUnderFire is the issue's acceptance campaign: a seeded
// single-bit fault-injection campaign runs THROUGH a live COP-4 -> COP-8
// migration with four concurrent workers. It must classify zero silent
// corruptions, the oracle must refute nothing, and the final DRAM image
// must be byte-identical to the image produced by running the same seeded
// campaign to completion first and migrating offline (drained,
// single-threaded) afterwards.
func TestMigrationUnderFire(t *testing.T) {
	type outcome struct {
		res  *faultsim.Result
		dump map[uint64][]byte
	}
	campaign := func(online bool) outcome {
		bm := newBatched(mustScheme(t, "cop-4"), 4)
		defer bm.Close()
		cfg := faultsim.Config{
			Mode:       memctrl.COP,
			Seed:       0xF14E,
			Blocks:     2048,
			Injections: 800,
			Workload:   compressibleWorkload(t),
			Modes:      []reliability.FailureMode{reliability.SingleBit},
			Workers:    4,
			Parallel:   online,
			Memory:     bm,
		}
		var migErr error
		var wg sync.WaitGroup
		if online {
			wg.Add(1)
			go func() {
				defer wg.Done()
				// Let the campaign get past footprint population so the
				// conversion walk overlaps live trials.
				time.Sleep(2 * time.Millisecond)
				migErr = MigrateTo(bm, "cop-8", Options{ChunkBlocks: 64})
			}()
		}
		res, err := faultsim.Run(cfg)
		wg.Wait()
		if err != nil {
			t.Fatalf("campaign (online=%v): %v", online, err)
		}
		if migErr != nil {
			t.Fatalf("live migration: %v", migErr)
		}
		if !online {
			// Offline reference: quiesce the memory to a fenced, flushed
			// state first, then convert single-threaded with no traffic.
			if err := bm.Drain(); err != nil {
				t.Fatalf("offline drain: %v", err)
			}
			if err := MigrateTo(bm, "cop-8", Options{ChunkBlocks: 64}); err != nil {
				t.Fatalf("offline migrate: %v", err)
			}
		}
		snap := bm.Snapshot()
		if snap.Migration == nil || snap.Migration.SchemeMigrations != 1 {
			t.Fatalf("online=%v: migration telemetry missing or wrong: %+v", online, snap.Migration)
		}
		if err := bm.Flush(); err != nil {
			t.Fatalf("final flush: %v", err)
		}
		return outcome{res: res, dump: bm.DumpDRAM()}
	}

	onl := campaign(true)
	off := campaign(false)

	for _, o := range []struct {
		name string
		outcome
	}{{"online", onl}, {"offline", off}} {
		if s, fa := o.res.Outcomes(faultsim.Silent), o.res.Outcomes(faultsim.FalseAlias); s != 0 || fa != 0 {
			t.Errorf("%s campaign: silent=%d false-alias=%d, want 0/0\n%s", o.name, s, fa, o.res.Table())
		}
		if om := o.res.OracleMismatches(); om != 0 {
			t.Errorf("%s campaign: oracle refuted %d reads", o.name, om)
		}
		if o.res.Outcomes(faultsim.Corrected) == 0 {
			t.Errorf("%s campaign corrected nothing — injection is not reaching live data", o.name)
		}
	}

	if len(onl.dump) != len(off.dump) {
		t.Fatalf("DRAM image count: online=%d offline=%d", len(onl.dump), len(off.dump))
	}
	for a, img := range onl.dump {
		ref, ok := off.dump[a]
		if !ok {
			t.Fatalf("block %#x present online, absent offline", a)
		}
		if !bytes.Equal(img, ref) {
			t.Fatalf("block %#x: online image %x != offline image %x", a, img, ref)
		}
	}
}

// TestMigrateAllSchemePairsUnderTraffic migrates between every ordered
// pair of registered schemes while two goroutines keep oracle-verified
// traffic flowing, then sweeps the whole footprint: every block must still
// read back its oracle content under the new scheme.
func TestMigrateAllSchemePairsUnderTraffic(t *testing.T) {
	names := Names()
	for fi, from := range names {
		for ti, to := range names {
			if from == to {
				continue
			}
			from, to, seed := from, to, int64(fi*16+ti+1)
			t.Run(from+"_to_"+to, func(t *testing.T) {
				t.Parallel()
				fs := mustScheme(t, from)
				bm := newBatched(fs, 2)
				defer bm.Close()

				const blocks = 512
				rng := rand.New(rand.NewSource(seed))
				content := make([][]byte, blocks)
				for i := range content {
					b := make([]byte, shard.BlockBytes)
					for w := 0; w < 8; w++ {
						binary.BigEndian.PutUint64(b[8*w:], 0x00003F00_00000000|uint64(rng.Intn(1<<16)))
					}
					content[i] = b
					if err := bm.Write(uint64(i)*shard.BlockBytes, b); err != nil {
						t.Fatal(err)
					}
				}
				if err := bm.Flush(); err != nil {
					t.Fatal(err)
				}

				stop := make(chan struct{})
				var wg sync.WaitGroup
				var bad atomic.Int64
				werrs := make(chan error, 2)
				for g := 0; g < 2; g++ {
					wg.Add(1)
					go func(seed int64) {
						defer wg.Done()
						wr := rand.New(rand.NewSource(seed))
						for ops := 0; ; ops++ {
							select {
							case <-stop:
								return
							default:
							}
							idx := wr.Intn(blocks)
							addr := uint64(idx) * shard.BlockBytes
							if ops%3 == 0 {
								if err := bm.Write(addr, content[idx]); err != nil {
									werrs <- err
									return
								}
							} else {
								got, err := bm.Read(addr)
								if err != nil {
									werrs <- err
									return
								}
								if !bytes.Equal(got, content[idx]) {
									bad.Add(1)
								}
							}
						}
					}(seed*100 + int64(g))
				}

				err := MigrateTo(bm, to, Options{ChunkBlocks: 32})
				close(stop)
				wg.Wait()
				if err != nil {
					t.Fatalf("migrate %s -> %s: %v", from, to, err)
				}
				close(werrs)
				for err := range werrs {
					t.Fatal(err)
				}
				ts := mustScheme(t, to)
				if got := bm.Mode(); got != ts.Mode {
					t.Fatalf("Mode after migration = %v, want %v", got, ts.Mode)
				}
				for i, want := range content {
					got, err := bm.Read(uint64(i) * shard.BlockBytes)
					if err != nil {
						t.Fatalf("block %d after migration: %v", i, err)
					}
					if !bytes.Equal(got, want) {
						bad.Add(1)
					}
				}
				if n := bad.Load(); n != 0 {
					t.Fatalf("%d corrupted reads across %s -> %s", n, from, to)
				}
			})
		}
	}
}

// TestMigrateUnknownScheme pins the registry error path.
func TestMigrateUnknownScheme(t *testing.T) {
	bm := newBatched(mustScheme(t, "cop-4"), 2)
	defer bm.Close()
	err := MigrateTo(bm, "cop-42", Options{})
	if err == nil {
		t.Fatal("MigrateTo accepted an unknown scheme")
	}
	if want := "unknown scheme"; !bytes.Contains([]byte(err.Error()), []byte(want)) {
		t.Fatalf("error %q does not mention %q", err, want)
	}
}

// TestRegistry pins the built-in scheme set and Register/Lookup behavior.
func TestRegistry(t *testing.T) {
	for _, want := range []string{"unprotected", "cop-4", "cop-8", "cop-adaptive", "ecc-region", "ecc-dimm"} {
		if _, ok := Lookup(want); !ok {
			t.Errorf("built-in scheme %q missing", want)
		}
	}
	names := Names()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Names() not sorted: %v", names)
		}
	}
	Register(Scheme{Name: "test-cop-4", Mode: memctrl.COP, COP: core.NewConfig4()})
	if _, ok := Lookup("test-cop-4"); !ok {
		t.Fatal("Register did not add the scheme")
	}
	delete(schemes, "test-cop-4")
}

// TestMigrationTelemetryProgress: a migration must account its chunk count
// and block total in the Migration section of the snapshot.
func TestMigrationTelemetryProgress(t *testing.T) {
	bm := newBatched(mustScheme(t, "cop-4"), 2)
	defer bm.Close()
	const blocks = 256
	buf := make([]byte, shard.BlockBytes)
	for i := 0; i < blocks; i++ {
		binary.BigEndian.PutUint64(buf, uint64(i))
		if err := bm.Write(uint64(i)*shard.BlockBytes, buf); err != nil {
			t.Fatal(err)
		}
	}
	if err := bm.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := MigrateTo(bm, "cop-8", Options{ChunkBlocks: 16}); err != nil {
		t.Fatal(err)
	}
	snap := bm.Snapshot()
	m := snap.Migration
	if m == nil {
		t.Fatal("snapshot has no migration section after a migration")
	}
	if m.SchemeMigrations != 1 {
		t.Errorf("SchemeMigrations = %d, want 1", m.SchemeMigrations)
	}
	// All footprint blocks sat in DRAM or dirty LLC lines; the conversion
	// walk plus organic writebacks must account every one of them.
	if m.BlocksMigrated == 0 {
		t.Errorf("BlocksMigrated = 0 after migrating a %d-block footprint", blocks)
	}
	if m.Chunks < m.BlocksMigrated/16 {
		t.Errorf("Chunks = %d too few for %d blocks at chunk size 16", m.Chunks, m.BlocksMigrated)
	}
	if got := snap.Controller.MigratedBlocks; got == 0 {
		t.Error("controller MigratedBlocks = 0 after a migration")
	}
}

func ExampleMigrate() {
	bm := shard.NewBatched(shard.BatchedConfig{
		Shard: shard.Config{
			Mem:    memctrl.Config{Mode: memctrl.COP, COPConfig: core.NewConfig4(), LLCBytes: 16 * 1024, LLCWays: 4},
			Shards: 2,
		},
	})
	defer bm.Close()
	_ = bm.Write(0, make([]byte, shard.BlockBytes))
	_ = bm.Flush()
	if err := MigrateTo(bm, "cop-8", Options{}); err != nil {
		fmt.Println("migrate:", err)
		return
	}
	fmt.Println("migrations:", bm.Snapshot().Migration.SchemeMigrations)
	// Output: migrations: 1
}
