package migrate

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"strings"
	"testing"
	"time"

	"cop/internal/shard"
)

// TestScrubberTelemetrySplit injects known fault patterns and pins the
// corrected-on-scrub versus corrected-on-read accounting split exactly:
// faults found by the patrol land in scrub_corrected, faults found by a
// demand read land in corrected_errors, and both appear in the JSON
// snapshot and the Prometheus text exposition.
func TestScrubberTelemetrySplit(t *testing.T) {
	bm := newBatched(mustScheme(t, "cop-4"), 2)
	defer bm.Close()

	const blocks = 256
	content := make([][]byte, blocks)
	for i := range content {
		b := make([]byte, shard.BlockBytes)
		for w := 0; w < 8; w++ {
			binary.BigEndian.PutUint64(b[8*w:], uint64(i*8+w))
		}
		content[i] = b
		if err := bm.Write(uint64(i)*shard.BlockBytes, b); err != nil {
			t.Fatal(err)
		}
	}
	if err := bm.Flush(); err != nil {
		t.Fatal(err)
	}
	base := bm.Snapshot().Controller
	if base.ScrubCorrected != 0 || base.CorrectedErrors != 0 {
		t.Fatalf("fresh memory already has corrections: %+v", base)
	}

	// Pattern 1 — corrected on scrub: corrupt settled DRAM images and let
	// the patrol find them before anything reads them.
	scrubTargets := []int{10, 77, 130}
	for _, idx := range scrubTargets {
		a := uint64(idx) * shard.BlockBytes
		if err := bm.Settle(a); err != nil {
			t.Fatal(err)
		}
		if !bm.InjectBitFlip(a, 7) {
			t.Fatalf("block %d has no DRAM image to corrupt", idx)
		}
	}
	s := NewScrubber(bm, ScrubOptions{Interval: 50 * time.Microsecond, ChunkBlocks: 64})
	s.Start()
	deadline := time.Now().Add(30 * time.Second)
	for {
		c := bm.Snapshot().Controller
		if c.ScrubCorrected >= uint64(len(scrubTargets)) {
			break
		}
		if time.Now().After(deadline) {
			s.Stop()
			t.Fatalf("patrol corrected %d of %d injected faults before timeout", c.ScrubCorrected, len(scrubTargets))
		}
		time.Sleep(time.Millisecond)
	}
	s.Stop()
	// Restartability: a stopped scrubber can be started again, and Stop on
	// a stopped scrubber is a no-op.
	s.Stop()
	s.Start()
	s.Start()
	s.Stop()

	// Pattern 2 — corrected on read: corrupt settled images, then demand-
	// read them with the patrol idle.
	readTargets := []int{201, 45}
	for _, idx := range readTargets {
		a := uint64(idx) * shard.BlockBytes
		if err := bm.Settle(a); err != nil {
			t.Fatal(err)
		}
		if !bm.InjectBitFlip(a, 11) {
			t.Fatalf("block %d has no DRAM image to corrupt", idx)
		}
		got, err := bm.Read(a)
		if err != nil {
			t.Fatalf("read of corrupted block %d: %v", idx, err)
		}
		if !bytes.Equal(got, content[idx]) {
			t.Fatalf("block %d not corrected on read", idx)
		}
	}

	snap := bm.Snapshot()
	c := snap.Controller
	if got, want := c.ScrubCorrected, uint64(len(scrubTargets)); got != want {
		t.Errorf("corrected-on-scrub = %d, want exactly %d", got, want)
	}
	if got, want := c.CorrectedErrors, uint64(len(readTargets)); got != want {
		t.Errorf("corrected-on-read = %d, want exactly %d", got, want)
	}
	if c.ScrubUncorrectable != 0 {
		t.Errorf("scrub found %d uncorrectable images, want 0", c.ScrubUncorrectable)
	}
	if c.ScrubScans < blocks {
		t.Errorf("ScrubScans = %d, want at least one full footprint pass (%d)", c.ScrubScans, blocks)
	}

	// Both views must carry the split: JSON snapshot...
	js, err := snap.JSON()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		fmt.Sprintf(`"scrub_corrected": %d`, len(scrubTargets)),
		fmt.Sprintf(`"corrected_errors": %d`, len(readTargets)),
		`"scrub_uncorrectable": 0`,
	} {
		if !bytes.Contains(js, []byte(want)) {
			t.Errorf("JSON snapshot missing %s:\n%s", want, js)
		}
	}
	// ...and the Prometheus text exposition.
	var prom strings.Builder
	if err := snap.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		fmt.Sprintf("cop_controller_scrub_corrected_total{scheme=%q} %d", snap.Scheme, len(scrubTargets)),
		fmt.Sprintf("cop_controller_corrected_errors_total{scheme=%q} %d", snap.Scheme, len(readTargets)),
		fmt.Sprintf("cop_controller_scrub_uncorrectable_total{scheme=%q} 0", snap.Scheme),
	} {
		if !strings.Contains(prom.String(), want) {
			t.Errorf("Prometheus text missing %q:\n%s", want, prom.String())
		}
	}
}
