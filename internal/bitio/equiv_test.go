package bitio

// Equivalence tests pinning the byte-chunked fast paths (WriteBits,
// ReadBits, ExtractBitsInto, DepositBits) to a per-bit reference, and
// locking the Reset/Truncate reuse semantics the zero-allocation codec
// datapath depends on.

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestWriteBitsMatchesPerBit(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 2000; trial++ {
		fast := NewWriter(0)
		slow := NewWriter(0)
		for op := 0; op < 20; op++ {
			n := rng.Intn(65)
			v := rng.Uint64()
			fast.WriteBits(v, n)
			for j := n - 1; j >= 0; j-- {
				slow.WriteBit(int(v >> uint(j) & 1))
			}
		}
		if fast.Len() != slow.Len() || !bytes.Equal(fast.Bytes(), slow.Bytes()) {
			t.Fatalf("trial %d: fast writer diverged from per-bit writer", trial)
		}
	}
}

func TestReadBitsMatchesPerBit(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 2000; trial++ {
		buf := make([]byte, 1+rng.Intn(24))
		rng.Read(buf)
		fast := NewReader(buf)
		slow := NewReader(buf)
		for op := 0; op < 12; op++ {
			n := rng.Intn(65)
			got := fast.ReadBits(n)
			var want uint64
			for j := 0; j < n; j++ {
				want = want<<1 | uint64(slow.ReadBit())
			}
			if got != want {
				t.Fatalf("trial %d op %d: ReadBits(%d) = %#x, per-bit %#x", trial, op, n, got, want)
			}
			if fast.Pos() != slow.Pos() || fast.Err() != slow.Err() {
				t.Fatalf("trial %d op %d: reader state diverged (pos %d/%d err %v/%v)",
					trial, op, fast.Pos(), slow.Pos(), fast.Err(), slow.Err())
			}
		}
	}
}

func TestExtractDepositMatchPerBit(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	getBit := func(buf []byte, i int) int { return int(buf[i>>3] >> (7 - uint(i&7)) & 1) }
	for trial := 0; trial < 3000; trial++ {
		src := make([]byte, 64)
		rng.Read(src)
		n := rng.Intn(200)
		off := rng.Intn(8*len(src) - n + 1)

		want := make([]byte, (n+7)/8)
		for i := 0; i < n; i++ {
			if getBit(src, off+i) != 0 {
				want[i>>3] |= 1 << (7 - uint(i&7))
			}
		}
		got := make([]byte, (n+7)/8)
		rng.Read(got) // ExtractBitsInto must fully overwrite dst
		ExtractBitsInto(got, src, off, n)
		if !bytes.Equal(got, want) {
			t.Fatalf("trial %d: ExtractBitsInto(off=%d, n=%d) diverged", trial, off, n)
		}

		dst := make([]byte, 64)
		rng.Read(dst)
		wantDst := make([]byte, 64)
		copy(wantDst, dst)
		payload := make([]byte, (n+7)/8)
		rng.Read(payload)
		for i := 0; i < n; i++ {
			// Reference semantics: every bit inside the window is written
			// (set or cleared); bits outside the window are untouched.
			mask := byte(1) << (7 - uint((off+i)&7))
			if getBit(payload, i) != 0 {
				wantDst[(off+i)>>3] |= mask
			} else {
				wantDst[(off+i)>>3] &^= mask
			}
		}
		DepositBits(dst, off, payload, n)
		if !bytes.Equal(dst, wantDst) {
			t.Fatalf("trial %d: DepositBits(off=%d, n=%d) diverged", trial, off, n)
		}
	}
}

func TestWriterResetReusesBuffer(t *testing.T) {
	w := NewWriter(128)
	w.WriteBits(0xDEAD, 16)
	first := &w.Bytes()[0]
	w.Reset(128)
	if w.Len() != 0 {
		t.Fatalf("Len after Reset = %d", w.Len())
	}
	w.WriteBits(0xBEEF, 16)
	if &w.Bytes()[0] != first {
		t.Fatal("Reset did not retain the buffer")
	}
	if w.Bytes()[0] != 0xBE || w.Bytes()[1] != 0xEF {
		t.Fatalf("bytes after Reset+write = %x", w.Bytes())
	}
}

func TestWriterTruncateRollsBack(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for trial := 0; trial < 500; trial++ {
		w := NewWriter(0)
		pre := rng.Intn(40)
		for i := 0; i < pre; i++ {
			w.WriteBit(rng.Intn(2))
		}
		mark := w.Len()
		snapshot := append([]byte(nil), w.Bytes()...)
		for i := 0; i < rng.Intn(100); i++ {
			w.WriteBits(rng.Uint64(), rng.Intn(33))
		}
		w.Truncate(mark)
		if w.Len() != mark {
			t.Fatalf("trial %d: Len after Truncate = %d, want %d", trial, w.Len(), mark)
		}
		if !bytes.Equal(w.Bytes(), snapshot) {
			t.Fatalf("trial %d: Truncate left stale bits: %x vs %x", trial, w.Bytes(), snapshot)
		}
		// Writes after the rollback must behave as if the discarded bits
		// never existed (the partial tail byte must have been masked).
		w.WriteBits(0, 7)
		w.Truncate(mark)
		w.WriteBits(^uint64(0), 3)
		check := NewReader(w.Bytes())
		check.ReadBits(mark)
		if got := check.ReadBits(3); got != 7 {
			t.Fatalf("trial %d: bits after Truncate+write = %#x, want 7", trial, got)
		}
	}
}
