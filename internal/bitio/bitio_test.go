package bitio

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBitSetBit(t *testing.T) {
	buf := make([]byte, 2)
	SetBit(buf, 0, 1)
	if buf[0] != 0x80 {
		t.Fatalf("bit 0 should be MSB of byte 0: got %#x", buf[0])
	}
	SetBit(buf, 7, 1)
	if buf[0] != 0x81 {
		t.Fatalf("bit 7 should be LSB of byte 0: got %#x", buf[0])
	}
	SetBit(buf, 8, 1)
	if buf[1] != 0x80 {
		t.Fatalf("bit 8 should be MSB of byte 1: got %#x", buf[1])
	}
	if Bit(buf, 0) != 1 || Bit(buf, 1) != 0 || Bit(buf, 7) != 1 || Bit(buf, 8) != 1 {
		t.Fatal("Bit readback mismatch")
	}
	SetBit(buf, 0, 0)
	if Bit(buf, 0) != 0 {
		t.Fatal("clearing a bit failed")
	}
}

func TestFlipBit(t *testing.T) {
	buf := make([]byte, 4)
	for i := 0; i < 32; i++ {
		FlipBit(buf, i)
		if Bit(buf, i) != 1 {
			t.Fatalf("flip bit %d: expected 1", i)
		}
		FlipBit(buf, i)
		if Bit(buf, i) != 0 {
			t.Fatalf("double flip bit %d: expected 0", i)
		}
	}
}

func TestWriterReaderRoundTrip(t *testing.T) {
	w := NewWriter(128)
	w.WriteBits(0b101, 3)
	w.WriteBit(1)
	w.WriteBits(0xDEADBEEF, 32)
	w.WriteBits(0, 0)
	w.WriteBits(0x3FF, 10)
	r := NewReader(w.Bytes())
	if got := r.ReadBits(3); got != 0b101 {
		t.Fatalf("3-bit field: got %#b", got)
	}
	if got := r.ReadBit(); got != 1 {
		t.Fatalf("single bit: got %d", got)
	}
	if got := r.ReadBits(32); got != 0xDEADBEEF {
		t.Fatalf("32-bit field: got %#x", got)
	}
	if got := r.ReadBits(10); got != 0x3FF {
		t.Fatalf("10-bit field: got %#x", got)
	}
	if r.Err() {
		t.Fatal("unexpected reader error")
	}
}

func TestWriterWriteBytesUnaligned(t *testing.T) {
	w := NewWriter(0)
	w.WriteBits(1, 1)
	w.WriteBytes([]byte{0xAB, 0xCD})
	r := NewReader(w.Bytes())
	if got := r.ReadBits(1); got != 1 {
		t.Fatal("leading bit lost")
	}
	if got := r.ReadBytes(2); !bytes.Equal(got, []byte{0xAB, 0xCD}) {
		t.Fatalf("unaligned bytes: got %x", got)
	}
}

func TestWriterWriteBytesAligned(t *testing.T) {
	w := NewWriter(0)
	w.WriteBytes([]byte{1, 2, 3})
	if w.Len() != 24 {
		t.Fatalf("Len = %d, want 24", w.Len())
	}
	if !bytes.Equal(w.Bytes(), []byte{1, 2, 3}) {
		t.Fatalf("aligned bytes: got %x", w.Bytes())
	}
}

func TestPadTo(t *testing.T) {
	w := NewWriter(0)
	w.WriteBits(0b11, 2)
	w.PadTo(16)
	if w.Len() != 16 {
		t.Fatalf("PadTo: Len = %d", w.Len())
	}
	if !bytes.Equal(w.Bytes(), []byte{0xC0, 0x00}) {
		t.Fatalf("PadTo content: %x", w.Bytes())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("PadTo past current length should panic")
		}
	}()
	w.PadTo(8)
}

func TestReaderOverrun(t *testing.T) {
	r := NewReader([]byte{0xFF})
	r.ReadBits(8)
	if r.Err() {
		t.Fatal("error before overrun")
	}
	if got := r.ReadBit(); got != 0 {
		t.Fatalf("overrun read should return 0, got %d", got)
	}
	if !r.Err() {
		t.Fatal("overrun not flagged")
	}
}

func TestReaderRemainingPos(t *testing.T) {
	r := NewReader(make([]byte, 4))
	if r.Remaining() != 32 || r.Pos() != 0 {
		t.Fatal("fresh reader state wrong")
	}
	r.ReadBits(5)
	if r.Remaining() != 27 || r.Pos() != 5 {
		t.Fatalf("after 5 bits: pos=%d rem=%d", r.Pos(), r.Remaining())
	}
}

func TestExtractDepositBits(t *testing.T) {
	src := []byte{0b10110100, 0b01011101}
	got := ExtractBits(src, 3, 7)
	// bits 3..9 of src: 1 0 1 0 0 0 1 -> 0b1010001 left aligned
	if got[0] != 0b10100010 {
		t.Fatalf("ExtractBits: got %08b", got[0])
	}
	dst := make([]byte, 2)
	DepositBits(dst, 3, got, 7)
	for i := 0; i < 7; i++ {
		if Bit(dst, 3+i) != Bit(src, 3+i) {
			t.Fatalf("DepositBits bit %d mismatch", i)
		}
	}
}

func TestExtractDepositRoundTripQuick(t *testing.T) {
	f := func(data []byte, off8, n8 uint8) bool {
		if len(data) == 0 {
			return true
		}
		total := 8 * len(data)
		off := int(off8) % total
		n := int(n8) % (total - off + 1)
		ex := ExtractBits(data, off, n)
		dst := make([]byte, len(data))
		DepositBits(dst, off, ex, n)
		for i := 0; i < n; i++ {
			if Bit(dst, off+i) != Bit(data, off+i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWriterReaderQuickRoundTrip(t *testing.T) {
	f := func(vals []uint16, widthSeed uint8) bool {
		w := NewWriter(0)
		widths := make([]int, len(vals))
		for i, v := range vals {
			widths[i] = 1 + int((uint(widthSeed)+uint(i)*7)%16)
			w.WriteBits(uint64(v)&((1<<widths[i])-1), widths[i])
		}
		r := NewReader(w.Bytes())
		for i, v := range vals {
			want := uint64(v) & ((1 << widths[i]) - 1)
			if got := r.ReadBits(widths[i]); got != want {
				return false
			}
		}
		return !r.Err()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestXOR(t *testing.T) {
	a := []byte{0xFF, 0x0F}
	b := []byte{0x0F, 0xFF}
	XOR(a, b)
	if !bytes.Equal(a, []byte{0xF0, 0xF0}) {
		t.Fatalf("XOR: got %x", a)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch should panic")
		}
	}()
	XOR(a, []byte{1})
}

func TestParity(t *testing.T) {
	if Parity([]byte{0}) != 0 {
		t.Fatal("parity of zero")
	}
	if Parity([]byte{1}) != 1 {
		t.Fatal("parity of one bit")
	}
	if Parity([]byte{0xFF}) != 0 {
		t.Fatal("parity of 8 bits")
	}
	if Parity([]byte{0xFF, 0x01}) != 1 {
		t.Fatal("parity of 9 bits")
	}
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 100; trial++ {
		buf := make([]byte, 1+rng.Intn(32))
		rng.Read(buf)
		want := 0
		for i := 0; i < 8*len(buf); i++ {
			want ^= Bit(buf, i)
		}
		if Parity(buf) != want {
			t.Fatalf("parity mismatch on %x", buf)
		}
	}
}

func TestReadBytesAligned(t *testing.T) {
	r := NewReader([]byte{1, 2, 3, 4})
	if got := r.ReadBytes(2); !bytes.Equal(got, []byte{1, 2}) {
		t.Fatalf("aligned ReadBytes: %x", got)
	}
	if got := r.ReadBytes(2); !bytes.Equal(got, []byte{3, 4}) {
		t.Fatalf("second ReadBytes: %x", got)
	}
}

func TestWriteBitsPanicsOutOfRange(t *testing.T) {
	w := NewWriter(0)
	for _, n := range []int{-1, 65} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("WriteBits(%d) should panic", n)
				}
			}()
			w.WriteBits(0, n)
		}()
	}
}

func TestReadBitsPanicsOutOfRange(t *testing.T) {
	r := NewReader(make([]byte, 16))
	for _, n := range []int{-1, 65} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("ReadBits(%d) should panic", n)
				}
			}()
			r.ReadBits(n)
		}()
	}
}
