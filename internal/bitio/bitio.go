// Package bitio provides bit-granularity readers, writers, and bit-vector
// helpers shared by the ECC codes and compression schemes.
//
// All multi-bit fields are serialized MSB-first within each byte: bit index
// 0 of a buffer is the most significant bit of byte 0. This matches the way
// the paper's block diagrams number bits left to right and keeps hex dumps
// readable.
package bitio

import "fmt"

// Bit returns bit i (MSB-first order) of buf.
func Bit(buf []byte, i int) int {
	return int(buf[i>>3]>>(7-uint(i&7))) & 1
}

// SetBit sets bit i (MSB-first order) of buf to v (0 or 1).
func SetBit(buf []byte, i int, v int) {
	mask := byte(1) << (7 - uint(i&7))
	if v != 0 {
		buf[i>>3] |= mask
	} else {
		buf[i>>3] &^= mask
	}
}

// FlipBit inverts bit i (MSB-first order) of buf.
func FlipBit(buf []byte, i int) {
	buf[i>>3] ^= byte(1) << (7 - uint(i&7))
}

// Writer appends bit fields to a byte buffer, MSB-first.
type Writer struct {
	buf  []byte
	nbit int
}

// NewWriter returns a Writer with capacity for capBits bits preallocated.
func NewWriter(capBits int) *Writer {
	return &Writer{buf: make([]byte, 0, (capBits+7)/8)}
}

// Len returns the number of bits written so far.
func (w *Writer) Len() int { return w.nbit }

// Reset truncates the writer to zero bits while retaining its buffer
// (growing it when capBits exceeds the current capacity), so one Writer can
// serve many compression attempts without reallocating.
func (w *Writer) Reset(capBits int) {
	if need := (capBits + 7) / 8; cap(w.buf) < need {
		w.buf = make([]byte, 0, need)
	}
	w.buf = w.buf[:0]
	w.nbit = 0
}

// Truncate discards every bit written after position n — the rollback a
// hybrid scheme needs when a speculative sub-scheme attempt overruns its
// budget. It panics if fewer than n bits have been written.
func (w *Writer) Truncate(n int) {
	if n < 0 || n > w.nbit {
		panic(fmt.Sprintf("bitio: Truncate(%d) with %d bits written", n, w.nbit))
	}
	w.buf = w.buf[:(n+7)/8]
	if n&7 != 0 {
		w.buf[n>>3] &= byte(0xFF) << uint(8-n&7)
	}
	w.nbit = n
}

// WriteBit appends a single bit.
func (w *Writer) WriteBit(v int) {
	if w.nbit&7 == 0 {
		w.buf = append(w.buf, 0)
	}
	if v != 0 {
		w.buf[w.nbit>>3] |= byte(1) << (7 - uint(w.nbit&7))
	}
	w.nbit++
}

var zeroBytes [9]byte

// WriteBits appends the low n bits of v, most significant first. n must be
// in [0, 64]. Bits are moved in byte-sized chunks, not one at a time.
func (w *Writer) WriteBits(v uint64, n int) {
	if n < 0 || n > 64 {
		panic(fmt.Sprintf("bitio: WriteBits n=%d out of range", n))
	}
	if n == 0 {
		return
	}
	if n < 64 {
		v &= 1<<uint(n) - 1
	}
	if grow := (w.nbit+n+7)/8 - len(w.buf); grow > 0 {
		w.buf = append(w.buf, zeroBytes[:grow]...)
	}
	pos, rem := w.nbit, n
	w.nbit += n
	for rem > 0 {
		space := 8 - pos&7
		take := rem
		if take > space {
			take = space
		}
		chunk := byte(v>>uint(rem-take)) & (0xFF >> uint(8-take))
		w.buf[pos>>3] |= chunk << uint(space-take)
		pos += take
		rem -= take
	}
}

// WriteBytes appends all bits of p.
func (w *Writer) WriteBytes(p []byte) {
	if w.nbit&7 == 0 {
		// Fast path: byte aligned.
		w.buf = append(w.buf, p...)
		w.nbit += 8 * len(p)
		return
	}
	for _, b := range p {
		w.WriteBits(uint64(b), 8)
	}
}

// Bytes returns the written bits padded with zeros to a byte boundary.
func (w *Writer) Bytes() []byte { return w.buf }

// PadTo appends zero bits until exactly n bits have been written. It panics
// if more than n bits were already written.
func (w *Writer) PadTo(n int) {
	if w.nbit > n {
		panic(fmt.Sprintf("bitio: PadTo(%d) with %d bits already written", n, w.nbit))
	}
	for w.nbit < n {
		w.WriteBit(0)
	}
}

// Reader consumes bit fields from a byte buffer, MSB-first.
type Reader struct {
	buf  []byte
	pos  int
	errd bool
}

// NewReader returns a Reader over buf.
func NewReader(buf []byte) *Reader { return &Reader{buf: buf} }

// Reset points the reader at buf and rewinds it, clearing the error flag.
// It lets a caller-owned Reader value be reused without allocating.
func (r *Reader) Reset(buf []byte) {
	r.buf = buf
	r.pos = 0
	r.errd = false
}

// Pos returns the current bit offset.
func (r *Reader) Pos() int { return r.pos }

// Remaining returns the number of unread bits.
func (r *Reader) Remaining() int { return 8*len(r.buf) - r.pos }

// Err reports whether any read ran past the end of the buffer.
func (r *Reader) Err() bool { return r.errd }

// ReadBit reads one bit, returning 0 and setting the error flag on overrun.
func (r *Reader) ReadBit() int {
	if r.pos >= 8*len(r.buf) {
		r.errd = true
		return 0
	}
	v := Bit(r.buf, r.pos)
	r.pos++
	return v
}

// ReadBits reads n bits (n ≤ 64) as an unsigned value, MSB-first. Bits are
// moved in byte-sized chunks; an overrun sets the error flag and, as with
// ReadBit, yields zero bits for the missing tail.
func (r *Reader) ReadBits(n int) uint64 {
	if n < 0 || n > 64 {
		panic(fmt.Sprintf("bitio: ReadBits n=%d out of range", n))
	}
	take := n
	if avail := 8*len(r.buf) - r.pos; take > avail {
		take = avail
		r.errd = true
	}
	var v uint64
	rem := take
	for rem > 0 {
		space := 8 - r.pos&7
		c := rem
		if c > space {
			c = space
		}
		chunk := r.buf[r.pos>>3] >> uint(space-c) & (0xFF >> uint(8-c))
		v = v<<uint(c) | uint64(chunk)
		r.pos += c
		rem -= c
	}
	// Overrun: the old bit-by-bit reader shifted in zeros for missing bits.
	return v << uint(n-take)
}

// ReadBytes reads 8*n bits into a fresh n-byte slice.
func (r *Reader) ReadBytes(n int) []byte {
	out := make([]byte, n)
	if r.pos&7 == 0 && r.pos+8*n <= 8*len(r.buf) {
		copy(out, r.buf[r.pos>>3:])
		r.pos += 8 * n
		return out
	}
	for i := range out {
		out[i] = byte(r.ReadBits(8))
	}
	return out
}

// ExtractBits copies the n bits of src starting at bit offset off into a new
// buffer, left-aligned (bit 0 of the result is src bit off).
func ExtractBits(src []byte, off, n int) []byte {
	out := make([]byte, (n+7)/8)
	ExtractBitsInto(out, src, off, n)
	return out
}

// ExtractBitsInto is the allocation-free ExtractBits: the n bits of src at
// bit offset off are written left-aligned into dst, whose first ceil(n/8)
// bytes are overwritten (tail pad bits zero). Bits move by whole bytes with
// shift-and-mask, not one at a time.
func ExtractBitsInto(dst, src []byte, off, n int) {
	if n <= 0 {
		return
	}
	outBytes := (n + 7) / 8
	sb, sh := off>>3, uint(off&7)
	if sh == 0 {
		copy(dst[:outBytes], src[sb:sb+outBytes])
	} else {
		for i := 0; i < outBytes; i++ {
			b := src[sb+i] << sh
			if sb+i+1 < len(src) {
				b |= src[sb+i+1] >> (8 - sh)
			}
			dst[i] = b
		}
	}
	if n&7 != 0 {
		dst[outBytes-1] &= byte(0xFF) << uint(8-n&7)
	}
}

// DepositBits copies the first n bits of src into dst starting at bit offset
// off, preserving the surrounding bits of dst. Bits move by whole bytes.
func DepositBits(dst []byte, off int, src []byte, n int) {
	for i := 0; n > 0; i++ {
		take := n
		if take > 8 {
			take = 8
		}
		mask := byte(0xFF) << uint(8-take)
		b := src[i] & mask
		sh := uint(off & 7)
		bi := off >> 3
		dst[bi] = dst[bi]&^(mask>>sh) | b>>sh
		if int(sh)+take > 8 {
			dst[bi+1] = dst[bi+1]&^(mask<<(8-sh)) | b<<(8-sh)
		}
		off += take
		n -= take
	}
}

// XOR xors src into dst in place; the slices must be the same length.
func XOR(dst, src []byte) {
	if len(dst) != len(src) {
		panic("bitio: XOR length mismatch")
	}
	for i := range dst {
		dst[i] ^= src[i]
	}
}

// Parity returns the XOR of all bits in buf (0 or 1).
func Parity(buf []byte) int {
	var acc byte
	for _, b := range buf {
		acc ^= b
	}
	acc ^= acc >> 4
	acc ^= acc >> 2
	acc ^= acc >> 1
	return int(acc & 1)
}
