// Package bitio provides bit-granularity readers, writers, and bit-vector
// helpers shared by the ECC codes and compression schemes.
//
// All multi-bit fields are serialized MSB-first within each byte: bit index
// 0 of a buffer is the most significant bit of byte 0. This matches the way
// the paper's block diagrams number bits left to right and keeps hex dumps
// readable.
package bitio

import "fmt"

// Bit returns bit i (MSB-first order) of buf.
func Bit(buf []byte, i int) int {
	return int(buf[i>>3]>>(7-uint(i&7))) & 1
}

// SetBit sets bit i (MSB-first order) of buf to v (0 or 1).
func SetBit(buf []byte, i int, v int) {
	mask := byte(1) << (7 - uint(i&7))
	if v != 0 {
		buf[i>>3] |= mask
	} else {
		buf[i>>3] &^= mask
	}
}

// FlipBit inverts bit i (MSB-first order) of buf.
func FlipBit(buf []byte, i int) {
	buf[i>>3] ^= byte(1) << (7 - uint(i&7))
}

// Writer appends bit fields to a byte buffer, MSB-first.
type Writer struct {
	buf  []byte
	nbit int
}

// NewWriter returns a Writer with capacity for capBits bits preallocated.
func NewWriter(capBits int) *Writer {
	return &Writer{buf: make([]byte, 0, (capBits+7)/8)}
}

// Len returns the number of bits written so far.
func (w *Writer) Len() int { return w.nbit }

// WriteBit appends a single bit.
func (w *Writer) WriteBit(v int) {
	if w.nbit&7 == 0 {
		w.buf = append(w.buf, 0)
	}
	if v != 0 {
		w.buf[w.nbit>>3] |= byte(1) << (7 - uint(w.nbit&7))
	}
	w.nbit++
}

// WriteBits appends the low n bits of v, most significant first. n must be
// in [0, 64].
func (w *Writer) WriteBits(v uint64, n int) {
	if n < 0 || n > 64 {
		panic(fmt.Sprintf("bitio: WriteBits n=%d out of range", n))
	}
	for i := n - 1; i >= 0; i-- {
		w.WriteBit(int(v>>uint(i)) & 1)
	}
}

// WriteBytes appends all bits of p.
func (w *Writer) WriteBytes(p []byte) {
	if w.nbit&7 == 0 {
		// Fast path: byte aligned.
		w.buf = append(w.buf, p...)
		w.nbit += 8 * len(p)
		return
	}
	for _, b := range p {
		w.WriteBits(uint64(b), 8)
	}
}

// Bytes returns the written bits padded with zeros to a byte boundary.
func (w *Writer) Bytes() []byte { return w.buf }

// PadTo appends zero bits until exactly n bits have been written. It panics
// if more than n bits were already written.
func (w *Writer) PadTo(n int) {
	if w.nbit > n {
		panic(fmt.Sprintf("bitio: PadTo(%d) with %d bits already written", n, w.nbit))
	}
	for w.nbit < n {
		w.WriteBit(0)
	}
}

// Reader consumes bit fields from a byte buffer, MSB-first.
type Reader struct {
	buf  []byte
	pos  int
	errd bool
}

// NewReader returns a Reader over buf.
func NewReader(buf []byte) *Reader { return &Reader{buf: buf} }

// Pos returns the current bit offset.
func (r *Reader) Pos() int { return r.pos }

// Remaining returns the number of unread bits.
func (r *Reader) Remaining() int { return 8*len(r.buf) - r.pos }

// Err reports whether any read ran past the end of the buffer.
func (r *Reader) Err() bool { return r.errd }

// ReadBit reads one bit, returning 0 and setting the error flag on overrun.
func (r *Reader) ReadBit() int {
	if r.pos >= 8*len(r.buf) {
		r.errd = true
		return 0
	}
	v := Bit(r.buf, r.pos)
	r.pos++
	return v
}

// ReadBits reads n bits (n ≤ 64) as an unsigned value, MSB-first.
func (r *Reader) ReadBits(n int) uint64 {
	if n < 0 || n > 64 {
		panic(fmt.Sprintf("bitio: ReadBits n=%d out of range", n))
	}
	var v uint64
	for i := 0; i < n; i++ {
		v = v<<1 | uint64(r.ReadBit())
	}
	return v
}

// ReadBytes reads 8*n bits into a fresh n-byte slice.
func (r *Reader) ReadBytes(n int) []byte {
	out := make([]byte, n)
	if r.pos&7 == 0 && r.pos+8*n <= 8*len(r.buf) {
		copy(out, r.buf[r.pos>>3:])
		r.pos += 8 * n
		return out
	}
	for i := range out {
		out[i] = byte(r.ReadBits(8))
	}
	return out
}

// ExtractBits copies the n bits of src starting at bit offset off into a new
// buffer, left-aligned (bit 0 of the result is src bit off).
func ExtractBits(src []byte, off, n int) []byte {
	out := make([]byte, (n+7)/8)
	for i := 0; i < n; i++ {
		if Bit(src, off+i) != 0 {
			SetBit(out, i, 1)
		}
	}
	return out
}

// DepositBits copies the first n bits of src into dst starting at bit offset
// off.
func DepositBits(dst []byte, off int, src []byte, n int) {
	for i := 0; i < n; i++ {
		SetBit(dst, off+i, Bit(src, i))
	}
}

// XOR xors src into dst in place; the slices must be the same length.
func XOR(dst, src []byte) {
	if len(dst) != len(src) {
		panic("bitio: XOR length mismatch")
	}
	for i := range dst {
		dst[i] ^= src[i]
	}
}

// Parity returns the XOR of all bits in buf (0 or 1).
func Parity(buf []byte) int {
	var acc byte
	for _, b := range buf {
		acc ^= b
	}
	acc ^= acc >> 4
	acc ^= acc >> 2
	acc ^= acc >> 1
	return int(acc & 1)
}
