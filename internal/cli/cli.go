// Package cli is the flag vocabulary shared by the cop binaries
// (copbench, copfault, coptrace): one scheme-name registry, one seed
// syntax, one set of spellings and defaults for the workload, worker, and
// telemetry-server flags — so names and semantics cannot drift between
// binaries.
package cli

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"strings"
	"time"

	"cop/internal/memctrl"
	"cop/internal/telemetry"
	"cop/internal/trace"
)

// Scheme pairs a command-line scheme name with its protection mode.
type Scheme struct {
	Name string
	Mode memctrl.Mode
}

// Schemes is the canonical scheme registry, in the order "all" runs them:
// baselines first, then the COP family, then the alternatives.
var Schemes = []Scheme{
	{"unprotected", memctrl.Unprotected},
	{"ecc-dimm", memctrl.ECCDIMM},
	{"cop", memctrl.COP},
	{"cop-er", memctrl.COPER},
	{"cop-adaptive", memctrl.COPAdaptive},
	{"cop-chipkill", memctrl.COPChipkill},
	{"ecc-region", memctrl.ECCRegion},
}

// SchemeNames returns the registered names, comma-joined for help text.
func SchemeNames() string {
	names := make([]string, len(Schemes))
	for i, s := range Schemes {
		names[i] = s.Name
	}
	return strings.Join(names, ", ")
}

// ParseSchemes resolves a -scheme argument: "all" yields the full registry
// in canonical order; otherwise a comma-separated list of names.
func ParseSchemes(arg string) ([]Scheme, error) {
	if arg == "all" {
		return append([]Scheme(nil), Schemes...), nil
	}
	var out []Scheme
	for _, name := range strings.Split(arg, ",") {
		name = strings.TrimSpace(name)
		found := false
		for _, s := range Schemes {
			if s.Name == name {
				out = append(out, s)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("unknown scheme %q (want one of %s, or 'all')", name, SchemeNames())
		}
	}
	return out, nil
}

// SchemeFlag defines a scheme-selection flag with the registry's shared
// help text, so every binary lists the same names the same way.
func SchemeFlag(fs *flag.FlagSet, name, def, what string) *string {
	return fs.String(name, def, what+" ("+SchemeNames()+", or 'all')")
}

// SingleScheme resolves a -scheme argument that must name exactly one
// scheme ("all" and comma lists are rejected).
func SingleScheme(arg string) (Scheme, error) {
	schemes, err := ParseSchemes(arg)
	if err != nil {
		return Scheme{}, err
	}
	if len(schemes) != 1 {
		return Scheme{}, fmt.Errorf("scheme %q: want exactly one of %s", arg, SchemeNames())
	}
	return schemes[0], nil
}

// MemoryFlags is the shared memory-construction flag bundle for binaries
// that stand up a protected memory to serve or drive (a copserve tenant,
// copload's in-process store). One registration here keeps the spellings,
// defaults, and help text identical across binaries instead of each cmd/
// carrying its own copy.
type MemoryFlags struct {
	Scheme   *string
	Shards   *int
	Ring     *int
	Batch    *int
	LLCBytes *int
	LLCWays  *int
}

// AddMemoryFlags registers the memory-construction flags on fs with the
// shared defaults (batched front-end auto-topology, 4 MB/16-way LLC via
// zero values).
func AddMemoryFlags(fs *flag.FlagSet, defScheme string) *MemoryFlags {
	return &MemoryFlags{
		Scheme:   SchemeFlag(fs, "scheme", defScheme, "protection scheme"),
		Shards:   fs.Int("shards", 0, "stripe count, a power of two (0: auto from GOMAXPROCS)"),
		Ring:     fs.Int("ring", 0, "per-shard request-ring capacity, a power of two (0: 256)"),
		Batch:    fs.Int("batch-max", 0, "max transactions per worker batch (0: 64)"),
		LLCBytes: fs.Int("llc-bytes", 0, "total LLC capacity in bytes across shards (0: 4 MiB)"),
		LLCWays:  fs.Int("llc-ways", 0, "LLC associativity (0: 16)"),
	}
}

// LoadFlags is the shared closed-loop load-harness flag bundle (copload,
// and any future driver that paces traffic at a memory).
type LoadFlags struct {
	Workers  *int
	QPS      *int
	Duration *time.Duration
	Ops      *int
	Keys     *int
	Window   *int
	Pipeline *int
	Mix      *string
	Workload *string
	Seed     *uint64
}

// AddLoadFlags registers the load-harness flags on fs.
func AddLoadFlags(fs *flag.FlagSet) *LoadFlags {
	return &LoadFlags{
		Workers:  WorkersFlag(fs, "workers", "concurrent closed-loop workers, each owning a disjoint key slice"),
		QPS:      fs.Int("qps", 0, "target total operations/second across workers (0: unpaced)"),
		Duration: fs.Duration("duration", 0, "run length (0: until -ops or interrupt)"),
		Ops:      fs.Int("ops", 0, "stop after this many operations per worker (0: unbounded)"),
		Keys:     fs.Int("keys", 1<<14, "footprint in 64-byte blocks across all workers"),
		Window:   fs.Int("window", 8, "operations batched into one request window"),
		Pipeline: fs.Int("pipeline", 1, "request windows each worker keeps in flight (keys partition into per-frame streams, so per-key order is preserved)"),
		Mix:      fs.String("mix", "60/30/5/5", "get/set/delete/increment percentages"),
		Workload: WorkloadFlag(fs, "workload", "gcc", "workload profile supplying block contents and hot-key skew"),
		Seed:     SeedFlag(fs, "seed", 0x10AD, "load-generator seed (same seed, same op stream)"),
	}
}

// ParseMix resolves a get/set/delete/increment percentage mix like
// "60/30/5/5" (the parts must sum to 100; trailing zero parts may be
// omitted).
func ParseMix(arg string) ([4]int, error) {
	var mix [4]int
	parts := strings.Split(arg, "/")
	if len(parts) == 0 || len(parts) > 4 {
		return mix, fmt.Errorf("mix %q: want get/set/delete/increment percentages", arg)
	}
	sum := 0
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v < 0 {
			return mix, fmt.Errorf("mix %q: bad percentage %q", arg, p)
		}
		mix[i] = v
		sum += v
	}
	if sum != 100 {
		return mix, fmt.Errorf("mix %q: percentages sum to %d, want 100", arg, sum)
	}
	return mix, nil
}

// seedValue is a flag.Value accepting decimal, 0x-hex, 0o-octal, and
// 0b-binary seeds (strconv base 0) and printing in hex.
type seedValue uint64

func (s *seedValue) String() string { return "0x" + strconv.FormatUint(uint64(*s), 16) }

func (s *seedValue) Set(arg string) error {
	v, err := strconv.ParseUint(arg, 0, 64)
	if err != nil {
		return fmt.Errorf("seed %q: %v", arg, err)
	}
	*s = seedValue(v)
	return nil
}

// SeedFlag defines a seed flag on fs that accepts 0x-prefixed hex as well
// as decimal, so "same seed, same table" invocations can be pasted between
// binaries unchanged.
func SeedFlag(fs *flag.FlagSet, name string, def uint64, usage string) *uint64 {
	v := seedValue(def)
	fs.Var(&v, name, usage)
	return (*uint64)(&v)
}

// WorkloadFlag defines a workload-profile flag with the shared default.
func WorkloadFlag(fs *flag.FlagSet, name, def, usage string) *string {
	return fs.String(name, def, usage)
}

// WorkersFlag defines a worker-count flag with the shared default of 1.
func WorkersFlag(fs *flag.FlagSet, name, usage string) *int {
	return fs.Int(name, 1, usage)
}

// TelemetryAddrFlag defines the -telemetry-addr flag: empty (the default)
// disables the server.
func TelemetryAddrFlag(fs *flag.FlagSet) *string {
	return fs.String("telemetry-addr", "",
		"serve /metrics, /snapshot, /debug/vars, and /debug/pprof on this address (e.g. :8080; empty: disabled)")
}

// TraceOutFlag defines the -trace-out flag shared by copbench and
// copfault: a Chrome-trace-event JSON destination for the execution
// flight recorder (empty: tracing disabled).
func TraceOutFlag(fs *flag.FlagSet, usage string) *string {
	return fs.String("trace-out", "", usage)
}

// ServeTelemetry starts the observability server on addr, serving reg
// (point reg at live memories with Registry.Set), and additionally
// publishes reg under expvar. A non-nil tr adds the /trace/start,
// /trace/stop, /trace.json, and /trace.bin flight-recorder endpoints. It
// returns the bound address — useful with ":0" — and never blocks; the
// server runs for the life of the process. An empty addr is a no-op
// returning "".
func ServeTelemetry(addr string, reg *telemetry.Registry, tr *trace.Tracer) (string, error) {
	if addr == "" {
		return "", nil
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("telemetry-addr %q: %v", addr, err)
	}
	telemetry.PublishExpvar(reg)
	srv := &http.Server{Handler: telemetry.HandlerWithTracer(reg, tr)}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), nil
}
