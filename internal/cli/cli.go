// Package cli is the flag vocabulary shared by the cop binaries
// (copbench, copfault, coptrace): one scheme-name registry, one seed
// syntax, one set of spellings and defaults for the workload, worker, and
// telemetry-server flags — so names and semantics cannot drift between
// binaries.
package cli

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"strings"

	"cop/internal/memctrl"
	"cop/internal/telemetry"
	"cop/internal/trace"
)

// Scheme pairs a command-line scheme name with its protection mode.
type Scheme struct {
	Name string
	Mode memctrl.Mode
}

// Schemes is the canonical scheme registry, in the order "all" runs them:
// baselines first, then the COP family, then the alternatives.
var Schemes = []Scheme{
	{"unprotected", memctrl.Unprotected},
	{"ecc-dimm", memctrl.ECCDIMM},
	{"cop", memctrl.COP},
	{"cop-er", memctrl.COPER},
	{"cop-adaptive", memctrl.COPAdaptive},
	{"cop-chipkill", memctrl.COPChipkill},
	{"ecc-region", memctrl.ECCRegion},
}

// SchemeNames returns the registered names, comma-joined for help text.
func SchemeNames() string {
	names := make([]string, len(Schemes))
	for i, s := range Schemes {
		names[i] = s.Name
	}
	return strings.Join(names, ", ")
}

// ParseSchemes resolves a -scheme argument: "all" yields the full registry
// in canonical order; otherwise a comma-separated list of names.
func ParseSchemes(arg string) ([]Scheme, error) {
	if arg == "all" {
		return append([]Scheme(nil), Schemes...), nil
	}
	var out []Scheme
	for _, name := range strings.Split(arg, ",") {
		name = strings.TrimSpace(name)
		found := false
		for _, s := range Schemes {
			if s.Name == name {
				out = append(out, s)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("unknown scheme %q (want one of %s, or 'all')", name, SchemeNames())
		}
	}
	return out, nil
}

// seedValue is a flag.Value accepting decimal, 0x-hex, 0o-octal, and
// 0b-binary seeds (strconv base 0) and printing in hex.
type seedValue uint64

func (s *seedValue) String() string { return "0x" + strconv.FormatUint(uint64(*s), 16) }

func (s *seedValue) Set(arg string) error {
	v, err := strconv.ParseUint(arg, 0, 64)
	if err != nil {
		return fmt.Errorf("seed %q: %v", arg, err)
	}
	*s = seedValue(v)
	return nil
}

// SeedFlag defines a seed flag on fs that accepts 0x-prefixed hex as well
// as decimal, so "same seed, same table" invocations can be pasted between
// binaries unchanged.
func SeedFlag(fs *flag.FlagSet, name string, def uint64, usage string) *uint64 {
	v := seedValue(def)
	fs.Var(&v, name, usage)
	return (*uint64)(&v)
}

// WorkloadFlag defines a workload-profile flag with the shared default.
func WorkloadFlag(fs *flag.FlagSet, name, def, usage string) *string {
	return fs.String(name, def, usage)
}

// WorkersFlag defines a worker-count flag with the shared default of 1.
func WorkersFlag(fs *flag.FlagSet, name, usage string) *int {
	return fs.Int(name, 1, usage)
}

// TelemetryAddrFlag defines the -telemetry-addr flag: empty (the default)
// disables the server.
func TelemetryAddrFlag(fs *flag.FlagSet) *string {
	return fs.String("telemetry-addr", "",
		"serve /metrics, /snapshot, /debug/vars, and /debug/pprof on this address (e.g. :8080; empty: disabled)")
}

// TraceOutFlag defines the -trace-out flag shared by copbench and
// copfault: a Chrome-trace-event JSON destination for the execution
// flight recorder (empty: tracing disabled).
func TraceOutFlag(fs *flag.FlagSet, usage string) *string {
	return fs.String("trace-out", "", usage)
}

// ServeTelemetry starts the observability server on addr, serving reg
// (point reg at live memories with Registry.Set), and additionally
// publishes reg under expvar. A non-nil tr adds the /trace/start,
// /trace/stop, /trace.json, and /trace.bin flight-recorder endpoints. It
// returns the bound address — useful with ":0" — and never blocks; the
// server runs for the life of the process. An empty addr is a no-op
// returning "".
func ServeTelemetry(addr string, reg *telemetry.Registry, tr *trace.Tracer) (string, error) {
	if addr == "" {
		return "", nil
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("telemetry-addr %q: %v", addr, err)
	}
	telemetry.PublishExpvar(reg)
	srv := &http.Server{Handler: telemetry.HandlerWithTracer(reg, tr)}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), nil
}
