package cli

import (
	"flag"
	"io"
	"net/http"
	"strings"
	"testing"

	"cop/internal/memctrl"
	"cop/internal/telemetry"
)

func TestParseSchemes(t *testing.T) {
	all, err := ParseSchemes("all")
	if err != nil || len(all) != len(Schemes) {
		t.Fatalf("all: %v, %d schemes", err, len(all))
	}
	got, err := ParseSchemes("cop-er, ecc-dimm")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Mode != memctrl.COPER || got[1].Mode != memctrl.ECCDIMM {
		t.Errorf("parsed %+v", got)
	}
	if _, err := ParseSchemes("nope"); err == nil || !strings.Contains(err.Error(), "unknown scheme") {
		t.Errorf("want unknown-scheme error, got %v", err)
	}
	if !strings.Contains(SchemeNames(), "cop-chipkill") {
		t.Errorf("SchemeNames() = %q", SchemeNames())
	}
}

func TestSeedFlag(t *testing.T) {
	for arg, want := range map[string]uint64{"0xC0FFEE": 0xC0FFEE, "42": 42, "0b101": 5} {
		fs := flag.NewFlagSet("t", flag.ContinueOnError)
		fs.SetOutput(io.Discard)
		seed := SeedFlag(fs, "seed", 7, "u")
		if err := fs.Parse([]string{"-seed", arg}); err != nil {
			t.Fatalf("%q: %v", arg, err)
		}
		if *seed != want {
			t.Errorf("%q: seed = %d, want %d", arg, *seed, want)
		}
	}
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	seed := SeedFlag(fs, "seed", 7, "u")
	if err := fs.Parse(nil); err != nil || *seed != 7 {
		t.Errorf("default: seed = %d (%v), want 7", *seed, err)
	}
	if err := fs.Parse([]string{"-seed", "zzz"}); err == nil {
		t.Error("bad seed should fail Parse")
	}
}

func TestServeTelemetry(t *testing.T) {
	if addr, err := ServeTelemetry("", nil); addr != "" || err != nil {
		t.Fatalf("empty addr: %q, %v", addr, err)
	}
	reg := &telemetry.Registry{}
	addr, err := ServeTelemetry("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr + "/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != 200 || !strings.Contains(string(body), "scheme") {
		t.Errorf("/snapshot: %d %s", resp.StatusCode, body)
	}
}
