package cli

import (
	"bytes"
	"flag"
	"io"
	"net/http"
	"strings"
	"testing"

	"cop/internal/memctrl"
	"cop/internal/telemetry"
	"cop/internal/trace"
)

func TestParseSchemes(t *testing.T) {
	all, err := ParseSchemes("all")
	if err != nil || len(all) != len(Schemes) {
		t.Fatalf("all: %v, %d schemes", err, len(all))
	}
	got, err := ParseSchemes("cop-er, ecc-dimm")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Mode != memctrl.COPER || got[1].Mode != memctrl.ECCDIMM {
		t.Errorf("parsed %+v", got)
	}
	if _, err := ParseSchemes("nope"); err == nil || !strings.Contains(err.Error(), "unknown scheme") {
		t.Errorf("want unknown-scheme error, got %v", err)
	}
	if !strings.Contains(SchemeNames(), "cop-chipkill") {
		t.Errorf("SchemeNames() = %q", SchemeNames())
	}
}

func TestSingleScheme(t *testing.T) {
	s, err := SingleScheme("cop-er")
	if err != nil || s.Mode != memctrl.COPER {
		t.Fatalf("cop-er: %+v, %v", s, err)
	}
	if _, err := SingleScheme("all"); err == nil {
		t.Error("'all' should not satisfy SingleScheme")
	}
	if _, err := SingleScheme("cop,ecc-dimm"); err == nil {
		t.Error("a list should not satisfy SingleScheme")
	}
	if _, err := SingleScheme("bogus"); err == nil {
		t.Error("unknown scheme should fail")
	}
}

func TestParseMix(t *testing.T) {
	mix, err := ParseMix("60/30/5/5")
	if err != nil || mix != [4]int{60, 30, 5, 5} {
		t.Fatalf("60/30/5/5: %v, %v", mix, err)
	}
	// Trailing zero parts may be omitted.
	mix, err = ParseMix("70/30")
	if err != nil || mix != [4]int{70, 30, 0, 0} {
		t.Fatalf("70/30: %v, %v", mix, err)
	}
	for _, bad := range []string{"60/30/5", "101", "60/30/5/5/1", "a/b/c/d", "-10/110"} {
		if _, err := ParseMix(bad); err == nil {
			t.Errorf("ParseMix(%q) accepted", bad)
		}
	}
}

func TestAddMemoryFlags(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	mem := AddMemoryFlags(fs, "cop-er")
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if *mem.Scheme != "cop-er" || *mem.Shards != 0 || *mem.LLCBytes != 0 {
		t.Errorf("defaults: scheme=%q shards=%d llc=%d", *mem.Scheme, *mem.Shards, *mem.LLCBytes)
	}
	fs = flag.NewFlagSet("t", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	mem = AddMemoryFlags(fs, "cop-er")
	args := []string{"-scheme", "cop", "-shards", "4", "-ring", "256", "-batch-max", "32", "-llc-bytes", "65536", "-llc-ways", "8"}
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	if *mem.Scheme != "cop" || *mem.Shards != 4 || *mem.Ring != 256 ||
		*mem.Batch != 32 || *mem.LLCBytes != 65536 || *mem.LLCWays != 8 {
		t.Errorf("parsed bundle %+v", mem)
	}
	// Validation happens when the consumer resolves the scheme name, not
	// at Parse time — a bad value must surface there.
	if _, err := SingleScheme("bogus"); err == nil {
		t.Error("unknown scheme should fail resolution")
	}
}

func TestAddLoadFlags(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	load := AddLoadFlags(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if *load.Keys != 1<<14 || *load.Window != 8 || *load.Mix != "60/30/5/5" ||
		*load.Workload != "gcc" || *load.Seed != 0x10AD || *load.Workers <= 0 {
		t.Errorf("defaults: keys=%d window=%d mix=%q workload=%q seed=%#x workers=%d",
			*load.Keys, *load.Window, *load.Mix, *load.Workload, *load.Seed, *load.Workers)
	}
	if mix, err := ParseMix(*load.Mix); err != nil || mix[0] != 60 {
		t.Errorf("default mix does not parse: %v, %v", mix, err)
	}
	fs = flag.NewFlagSet("t", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	load = AddLoadFlags(fs)
	if err := fs.Parse([]string{"-workers", "3", "-qps", "5000", "-duration", "2s", "-mix", "50/50"}); err != nil {
		t.Fatal(err)
	}
	if *load.Workers != 3 || *load.QPS != 5000 || load.Duration.Seconds() != 2 || *load.Mix != "50/50" {
		t.Errorf("parsed bundle %+v", load)
	}
}

func TestSeedFlag(t *testing.T) {
	for arg, want := range map[string]uint64{"0xC0FFEE": 0xC0FFEE, "42": 42, "0b101": 5} {
		fs := flag.NewFlagSet("t", flag.ContinueOnError)
		fs.SetOutput(io.Discard)
		seed := SeedFlag(fs, "seed", 7, "u")
		if err := fs.Parse([]string{"-seed", arg}); err != nil {
			t.Fatalf("%q: %v", arg, err)
		}
		if *seed != want {
			t.Errorf("%q: seed = %d, want %d", arg, *seed, want)
		}
	}
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	seed := SeedFlag(fs, "seed", 7, "u")
	if err := fs.Parse(nil); err != nil || *seed != 7 {
		t.Errorf("default: seed = %d (%v), want 7", *seed, err)
	}
	if err := fs.Parse([]string{"-seed", "zzz"}); err == nil {
		t.Error("bad seed should fail Parse")
	}
}

func TestServeTelemetry(t *testing.T) {
	if addr, err := ServeTelemetry("", nil, nil); addr != "" || err != nil {
		t.Fatalf("empty addr: %q, %v", addr, err)
	}
	reg := &telemetry.Registry{}
	tr := trace.New(trace.Config{RingSize: 64})
	addr, err := ServeTelemetry("127.0.0.1:0", reg, tr)
	if err != nil {
		t.Fatal(err)
	}
	get := func(path string) (int, []byte) {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, body
	}
	if code, body := get("/snapshot"); code != 200 || !strings.Contains(string(body), "scheme") {
		t.Errorf("/snapshot: %d %s", code, body)
	}
	if code, _ := get("/trace/start"); code != 200 {
		t.Errorf("/trace/start: %d", code)
	}
	if !tr.Enabled() {
		t.Error("tracer not enabled after /trace/start")
	}
	tr.Handle(0).Record(trace.KindLoad, 0x40, 0, 0, 0, 0, 0)
	if code, body := get("/trace.json"); code != 200 {
		t.Errorf("/trace.json: %d", code)
	} else if n, err := trace.ValidateChromeJSON(body); err != nil || n == 0 {
		t.Errorf("/trace.json: %d events, %v", n, err)
	}
	if code, body := get("/trace.bin"); code != 200 {
		t.Errorf("/trace.bin: %d", code)
	} else if d, err := trace.ReadDump(bytes.NewReader(body)); err != nil || len(d.Records) != 1 {
		t.Errorf("/trace.bin: %v (dump %+v)", err, d)
	}
	if code, _ := get("/trace/stop"); code != 200 {
		t.Errorf("/trace/stop: %d", code)
	}
	if tr.Enabled() {
		t.Error("tracer still enabled after /trace/stop")
	}
}
