package cli

import (
	"bytes"
	"flag"
	"io"
	"net/http"
	"strings"
	"testing"

	"cop/internal/memctrl"
	"cop/internal/telemetry"
	"cop/internal/trace"
)

func TestParseSchemes(t *testing.T) {
	all, err := ParseSchemes("all")
	if err != nil || len(all) != len(Schemes) {
		t.Fatalf("all: %v, %d schemes", err, len(all))
	}
	got, err := ParseSchemes("cop-er, ecc-dimm")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Mode != memctrl.COPER || got[1].Mode != memctrl.ECCDIMM {
		t.Errorf("parsed %+v", got)
	}
	if _, err := ParseSchemes("nope"); err == nil || !strings.Contains(err.Error(), "unknown scheme") {
		t.Errorf("want unknown-scheme error, got %v", err)
	}
	if !strings.Contains(SchemeNames(), "cop-chipkill") {
		t.Errorf("SchemeNames() = %q", SchemeNames())
	}
}

func TestSeedFlag(t *testing.T) {
	for arg, want := range map[string]uint64{"0xC0FFEE": 0xC0FFEE, "42": 42, "0b101": 5} {
		fs := flag.NewFlagSet("t", flag.ContinueOnError)
		fs.SetOutput(io.Discard)
		seed := SeedFlag(fs, "seed", 7, "u")
		if err := fs.Parse([]string{"-seed", arg}); err != nil {
			t.Fatalf("%q: %v", arg, err)
		}
		if *seed != want {
			t.Errorf("%q: seed = %d, want %d", arg, *seed, want)
		}
	}
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	seed := SeedFlag(fs, "seed", 7, "u")
	if err := fs.Parse(nil); err != nil || *seed != 7 {
		t.Errorf("default: seed = %d (%v), want 7", *seed, err)
	}
	if err := fs.Parse([]string{"-seed", "zzz"}); err == nil {
		t.Error("bad seed should fail Parse")
	}
}

func TestServeTelemetry(t *testing.T) {
	if addr, err := ServeTelemetry("", nil, nil); addr != "" || err != nil {
		t.Fatalf("empty addr: %q, %v", addr, err)
	}
	reg := &telemetry.Registry{}
	tr := trace.New(trace.Config{RingSize: 64})
	addr, err := ServeTelemetry("127.0.0.1:0", reg, tr)
	if err != nil {
		t.Fatal(err)
	}
	get := func(path string) (int, []byte) {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, body
	}
	if code, body := get("/snapshot"); code != 200 || !strings.Contains(string(body), "scheme") {
		t.Errorf("/snapshot: %d %s", code, body)
	}
	if code, _ := get("/trace/start"); code != 200 {
		t.Errorf("/trace/start: %d", code)
	}
	if !tr.Enabled() {
		t.Error("tracer not enabled after /trace/start")
	}
	tr.Handle(0).Record(trace.KindLoad, 0x40, 0, 0, 0, 0, 0)
	if code, body := get("/trace.json"); code != 200 {
		t.Errorf("/trace.json: %d", code)
	} else if n, err := trace.ValidateChromeJSON(body); err != nil || n == 0 {
		t.Errorf("/trace.json: %d events, %v", n, err)
	}
	if code, body := get("/trace.bin"); code != 200 {
		t.Errorf("/trace.bin: %d", code)
	} else if d, err := trace.ReadDump(bytes.NewReader(body)); err != nil || len(d.Records) != 1 {
		t.Errorf("/trace.bin: %v (dump %+v)", err, d)
	}
	if code, _ := get("/trace/stop"); code != 200 {
		t.Errorf("/trace/stop: %d", code)
	}
	if tr.Enabled() {
		t.Error("tracer still enabled after /trace/stop")
	}
}
