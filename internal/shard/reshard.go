package shard

// Online reconfiguration for the batched front-end: elastic resharding
// (grow or shrink the stripe count under live traffic) plus the hooks the
// migrate package drives a live protection-scheme migration through
// (Reconfigure, WithShard, CommitScheme).
//
// Resharding works family by family. With counts oldN and newN (both
// powers of two), every stripe index is congruent to some f modulo
// min(oldN, newN); the stripes of one congruence class f form a family,
// and — because striping is set-index compatible — a family's blocks on
// the old shards map exactly onto a disjoint set of new shards. The
// resharder therefore quiesces only the family being moved: it publishes
// a transitional route table (per-entry logN, so stripes owned by shards
// built for different counts coexist), drains the family's source shards,
// copies their resident blocks into the family's target shards, cuts the
// family's stripes over with one atomic topology publish, and retires the
// sources. Stripes outside the family keep serving the whole time.
//
// A failed reshard (an uncorrectable block hit during a move) re-enables
// the family's sources and returns, leaving a consistent, fully
// serviceable mixed topology; calling Reshard again retries from wherever
// the previous attempt stopped. Block content is always preserved; DRAM
// images equal an offline replay's byte for byte under the
// history-independent encodings (Unprotected, COP, COP-adaptive,
// ECC-region, ECC-DIMM — pinned by TestReshardEquivalence), while COP-ER
// and chipkill re-derive their region pointers on re-encode.

import (
	"fmt"
	"runtime"
	"sort"

	"cop/internal/core"
	"cop/internal/memctrl"
)

// Reshard changes the stripe count to newN (a power of two within the
// same limits as Config.Shards) while the front-end keeps serving. See
// the file comment for the protocol and failure semantics.
func (b *Batched) Reshard(newN int) error {
	b.reconfMu.Lock()
	defer b.reconfMu.Unlock()
	if b.closed {
		return ErrClosed
	}
	return b.reshardLocked(newN)
}

func (b *Batched) reshardLocked(newN int) error {
	topo := b.topo.Load()
	oldN := topo.n
	if newN == oldN {
		return nil
	}
	// Normalize treats a non-positive count as "pick a default", which a
	// deliberate reshard must never do — reject explicitly.
	if newN < 1 || newN&(newN-1) != 0 {
		return fmt.Errorf("shard: reshard to %d stripes: count must be a power of two >= 1", newN)
	}
	scfg := b.cfg.Shard
	scfg.Shards = newN
	scfg, err := scfg.Normalize()
	if err != nil {
		return err
	}
	minN, maxN := oldN, newN
	if newN < oldN {
		minN, maxN = newN, oldN
	}
	b.migTel.Active.Add(1)
	defer b.migTel.Active.Add(-1)

	// Build every target shard up front: fresh controllers sized for the
	// new stripe count, Enabled, workers running, rings empty. They serve
	// nothing until their family's cutover routes stripes at them. Handle
	// index reuse with a still-live old shard is benign: the old shard is
	// quiesced (recording nothing) before its replacement sees traffic.
	perShard := scfg.Mem
	perShard.LLCBytes = scfg.Mem.LLCBytes / newN
	perShard.Tracer = nil
	newLogN := log2(newN)
	newMask := uint64(newN - 1)
	if b.tracer != nil {
		b.tracer.EnsureShards(maxN)
	}
	newShards := make([]*batchShard, newN)
	newSlots := make([]*shardSlot, newN)
	for i := range newShards {
		slot := &shardSlot{ctrl: memctrl.New(perShard)}
		if b.tracer != nil {
			h := b.tracer.Handle(i)
			slot.th = h
			slot.ctrl.AttachTracer(h)
		}
		newSlots[i] = slot
		newShards[i] = newBatchShard(b.ringSize, slot, i, newLogN)
	}
	b.wg.Add(newN)
	for _, bs := range newShards {
		go b.run(bs)
	}
	// closeNew shuts down the not-yet-routed targets on abort (families
	// from and up never cut over; new shard i belongs to family i%minN).
	closeNew := func(from int) {
		for i, bs := range newShards {
			if i%minN < from {
				continue
			}
			bs.mu.Lock()
			bs.mode.Store(int32(modeClosed))
			bs.cond.Broadcast()
			bs.mu.Unlock()
			bs.wakeWorker()
		}
	}

	// Transitional route table: size maxN, every stripe still owned by
	// its current shard (for a grow, entry j aliases old entry j&oldMask —
	// routing-identical to the old table).
	entries := make([]routeEntry, maxN)
	for j := range entries {
		entries[j] = topo.entries[uint64(j)&topo.mask]
	}
	cur := &topology{
		mask:    uint64(maxN - 1),
		entries: entries,
		bshards: topo.bshards,
		n:       oldN,
		scheme:  topo.scheme,
		inner:   topo.inner,
	}
	b.topo.Store(cur)

	for f := 0; f < minN; f++ {
		var srcs []*batchShard
		for j := f; j < maxN; j += minN {
			src := cur.entries[j].bs
			dup := false
			for _, s := range srcs {
				if s == src {
					dup = true
					break
				}
			}
			if !dup {
				srcs = append(srcs, src)
			}
		}
		abort := func(stage string, err error) error {
			for _, s := range srcs {
				b.setMode(s, ModeEnabled)
			}
			closeNew(f)
			return fmt.Errorf("shard: reshard %s (family %d): %w", stage, f, err)
		}
		for _, src := range srcs {
			if err := b.quiesceShard(src); err != nil {
				return abort("quiesce", err)
			}
		}
		for _, src := range srcs {
			if err := b.moveBlocks(src, newShards, newLogN, newMask); err != nil {
				return abort("move", err)
			}
		}
		next := make([]routeEntry, maxN)
		copy(next, cur.entries)
		for j := f; j < maxN; j += minN {
			next[j] = routeEntry{newShards[uint64(j)&newMask], newLogN}
		}
		cur = &topology{
			mask:    uint64(maxN - 1),
			entries: next,
			bshards: distinctShards(next),
			n:       oldN,
			scheme:  topo.scheme,
			inner:   topo.inner,
		}
		b.topo.Store(cur)
		for _, src := range srcs {
			b.retireShard(src)
		}
	}

	// Final topology: compact table at the new size (routing-identical to
	// the last transitional table) and a fresh equivalent Controller.
	finalEntries := make([]routeEntry, newN)
	for i := range finalEntries {
		finalEntries[i] = routeEntry{newShards[i], newLogN}
	}
	b.topo.Store(&topology{
		mask:    newMask,
		entries: finalEntries,
		bshards: newShards,
		n:       newN,
		scheme:  topo.scheme,
		inner:   &Controller{shards: newSlots, mask: newMask, logN: newLogN, mode: scfg.Mem.Mode},
	})
	b.cfg.Shard = scfg
	b.migTel.Reshards.Inc()
	return nil
}

// distinctShards lists each shard referenced by a route table once, in
// first-stripe order. Every live shard owns at least one stripe, so this
// is the topology's iteration set.
func distinctShards(entries []routeEntry) []*batchShard {
	seen := make(map[*batchShard]bool, len(entries))
	out := make([]*batchShard, 0, len(entries))
	for _, e := range entries {
		if !seen[e.bs] {
			seen[e.bs] = true
			out = append(out, e.bs)
		}
	}
	return out
}

// quiesceShard fences one shard completely: Draining mode, the drain
// fence, then every producer holding an inflight claim and everything
// already published is waited out, and a final drain catches stragglers
// that raced the fence. On nil return the shard cannot execute another
// transaction until re-enabled: producers that raised inflight before the
// mode flip have published and been consumed (the ring is drained), and
// later producers observe a non-Enabled mode and park.
func (b *Batched) quiesceShard(bs *batchShard) error {
	b.setMode(bs, ModeDraining)
	bs.mu.Lock()
	for !bs.fenced && Mode(bs.mode.Load()) == ModeDraining {
		bs.cond.Wait()
	}
	err := bs.drainErr
	bs.mu.Unlock()
	for bs.inflight.Load() != 0 {
		runtime.Gosched()
	}
	for !bs.ring.drained() {
		bs.wakeWorker()
		runtime.Gosched()
	}
	bs.slot.mu.Lock()
	derr := bs.slot.ctrl.Drain()
	bs.slot.mu.Unlock()
	if err == nil {
		err = derr
	}
	return err
}

// retireShard moves a quiesced, already-unrouted shard to its terminal
// state, wakes producers parked on it so they re-resolve the topology,
// and folds its final counters into the retired accumulators.
func (b *Batched) retireShard(bs *batchShard) {
	bs.mu.Lock()
	bs.mode.Store(int32(modeRetired))
	bs.cond.Broadcast()
	bs.mu.Unlock()
	bs.wakeWorker()
	b.retiredOps.Add(bs.slot.ops.Load())
	snap := bs.slot.ctrl.Snapshot()
	stats := bs.slot.ctrl.Stats()
	b.retiredMu.Lock()
	if !b.haveRetired {
		b.retiredTel = snap
		b.haveRetired = true
	} else {
		b.retiredTel.Merge(snap)
	}
	b.retiredStats.Add(stats)
	b.retiredBatch.Merge(bs.tel.Snapshot())
	b.retiredMu.Unlock()
}

// moveBlocks copies every resident block of a quiesced src into its owner
// among the target shards: decode with src's machinery, write the
// plaintext into the target, which re-encodes under its own scheme on
// writeback. The writes go through the targets' controllers directly —
// not their rings — so they count as no operations (Ops equivalence with
// an offline replay) and need only the targets' slot locks. Blocks with
// neither a DRAM image nor a dirty LLC line are untouched zero-fill and
// are deliberately not moved (materializing images for never-written
// blocks would diverge from a replay).
func (b *Batched) moveBlocks(src *batchShard, targets []*batchShard, tlogN uint, tmask uint64) error {
	s := src.slot
	s.mu.Lock()
	addrs := s.ctrl.AppendResidentAddrs(nil)
	s.mu.Unlock()
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	var moved uint64
	for _, inner := range addrs {
		s.mu.Lock()
		data, ok, err := s.ctrl.DecodeResident(inner)
		s.mu.Unlock()
		if err != nil {
			b.migTel.BlocksMoved.Add(moved)
			return fmt.Errorf("block %#x: %w", inner, err)
		}
		if !ok {
			continue
		}
		outerIdx := (inner/BlockBytes)<<src.logN | uint64(src.idx)
		t := targets[outerIdx&tmask]
		tInner := (outerIdx >> tlogN) * BlockBytes
		t.slot.mu.Lock()
		werr := t.slot.ctrl.Write(tInner, data)
		t.slot.mu.Unlock()
		if werr != nil {
			b.migTel.BlocksMoved.Add(moved)
			return fmt.Errorf("block %#x: %w", inner, werr)
		}
		moved++
	}
	b.migTel.BlocksMoved.Add(moved)
	return nil
}

// --- live-migration hooks (consumed by internal/migrate) ----------------

// Reconfigure runs fn with reconfiguration serialized — no reshard,
// tracer swap, or Close can interleave — and the Migration Active gauge
// raised. It is the critical section a live scheme migration runs in.
func (b *Batched) Reconfigure(fn func() error) error {
	b.reconfMu.Lock()
	defer b.reconfMu.Unlock()
	if b.closed {
		return ErrClosed
	}
	b.migTel.Active.Add(1)
	defer b.migTel.Active.Add(-1)
	return fn()
}

// WithShard runs fn on shard i's controller under the shard lock,
// serialized against the shard's worker. The index resolves against the
// topology current at call time.
func (b *Batched) WithShard(i int, fn func(*memctrl.Controller) error) error {
	topo := b.topo.Load()
	if i < 0 || i >= len(topo.bshards) {
		return fmt.Errorf("shard: no shard %d", i)
	}
	bs := topo.bshards[i]
	bs.slot.mu.Lock()
	defer bs.slot.mu.Unlock()
	return fn(bs.slot.ctrl)
}

// CommitScheme records the protection scheme and codec configuration a
// live migration is converting the memory to: Mode reports it and shards
// built by later reshards use it. Must be called from within a
// Reconfigure critical section (it assumes reconfiguration is serialized
// and the topology compact).
func (b *Batched) CommitScheme(m memctrl.Mode, copCfg core.Config) {
	b.cfg.Shard.Mem.Mode = m
	b.cfg.Shard.Mem.COPConfig = copCfg
	old := b.topo.Load()
	slots := make([]*shardSlot, len(old.bshards))
	for i, bs := range old.bshards {
		slots[i] = bs.slot
	}
	next := *old
	next.scheme = m
	next.inner = &Controller{shards: slots, mask: old.mask, logN: old.bshards[0].logN, mode: m}
	b.topo.Store(&next)
}

// DumpDRAM returns a copy of every resident DRAM image keyed by outer
// block address (the addresses callers use). Intended for drained,
// quiescent instances; under concurrent traffic the result is a
// per-shard-consistent sample, not a global instant.
func (b *Batched) DumpDRAM() map[uint64][]byte {
	out := map[uint64][]byte{}
	for _, bs := range b.topo.Load().bshards {
		bs.slot.mu.Lock()
		d := bs.slot.ctrl.DumpDRAM()
		bs.slot.mu.Unlock()
		for inner, img := range d {
			outerIdx := (inner/BlockBytes)<<bs.logN | uint64(bs.idx)
			out[outerIdx*BlockBytes] = img
		}
	}
	return out
}
