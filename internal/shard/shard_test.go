package shard

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"cop/internal/memctrl"
)

func compressibleData(rng *rand.Rand) []byte {
	b := make([]byte, BlockBytes)
	base := uint64(0x00007F00_00000000)
	for i := 0; i < 8; i++ {
		binary.BigEndian.PutUint64(b[8*i:], base|uint64(rng.Intn(1<<20)))
	}
	return b
}

func randomData(rng *rand.Rand) []byte {
	b := make([]byte, BlockBytes)
	rng.Read(b)
	return b
}

// newSharded builds a 4-shard controller whose aggregate LLC matches
// newUnsharded's, small enough that evictions happen fast.
func newSharded(m memctrl.Mode) *Controller {
	return New(Config{Mem: memctrl.Config{Mode: m, LLCBytes: 64 * 1024, LLCWays: 8}, Shards: 4})
}

func newUnsharded(m memctrl.Mode) *memctrl.Controller {
	return memctrl.New(memctrl.Config{Mode: m, LLCBytes: 64 * 1024, LLCWays: 8})
}

func TestShardCountNormalization(t *testing.T) {
	mem := memctrl.Config{Mode: memctrl.COP, LLCBytes: 64 * 1024, LLCWays: 8}
	// Valid explicit counts are taken exactly as given.
	for _, n := range []int{1, 2, 8, 128} {
		c, err := NewChecked(Config{Mem: mem, Shards: n})
		if err != nil {
			t.Fatalf("Shards=%d: unexpected error %v", n, err)
		}
		if got := c.NumShards(); got != n {
			t.Errorf("Shards=%d: got %d shards", n, got)
		}
	}
	// Invalid explicit counts are errors, never silently rounded:
	// non-powers of two, more shards than the 128 LLC sets, negatives.
	for _, n := range []int{3, 5, 6, 7, 256, 1024, -1} {
		if _, err := NewChecked(Config{Mem: mem, Shards: n}); err == nil {
			t.Errorf("Shards=%d: want error, got nil", n)
		}
	}
	// A non-power-of-two set geometry is also an error.
	bad := memctrl.Config{Mode: memctrl.COP, LLCBytes: 96 * 1024, LLCWays: 8}
	if _, err := NewChecked(Config{Mem: bad, Shards: 2}); err == nil {
		t.Error("non-power-of-two set count: want error, got nil")
	}
	// New panics where NewChecked errors.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("New(Shards=3): want panic")
			}
		}()
		New(Config{Mem: mem, Shards: 3})
	}()
	// Shards=0 auto-selects a power of two clamped to the set count.
	def, err := NewChecked(Config{Mem: memctrl.Config{Mode: memctrl.COP}})
	if err != nil {
		t.Fatalf("auto shard count: %v", err)
	}
	if n := def.NumShards(); n <= 0 || n&(n-1) != 0 {
		t.Errorf("default shard count %d is not a power of two", n)
	}
	// NextPow2 is the sanctioned rounding helper for free worker counts.
	for in, want := range map[int]int{0: 1, 1: 1, 3: 4, 5: 8, 8: 8} {
		if got := NextPow2(in); got != want {
			t.Errorf("NextPow2(%d) = %d, want %d", in, got, want)
		}
	}
}

// TestShardedMatchesUnshardedReplay replays one deterministic trace through
// a plain Controller and a ShardedController and requires identical
// functional results: every read returns the same bytes, and injected
// faults produce the same corrected/uncorrectable classification. The
// set-index-compatible striping makes even hit/miss/eviction behavior
// line up exactly.
func TestShardedMatchesUnshardedReplay(t *testing.T) {
	for _, m := range []memctrl.Mode{memctrl.COP, memctrl.COPER} {
		t.Run(m.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(21))
			single := newUnsharded(m)
			sharded := newSharded(m)

			// Mixed-content working set far larger than the LLC.
			blocks, mixOps := 4096, 8000
			if testing.Short() {
				blocks, mixOps = 1024, 2000
			}
			for i := 0; i < blocks; i++ {
				addr := uint64(i) * BlockBytes
				var d []byte
				if i%3 == 0 {
					d = randomData(rng)
				} else {
					d = compressibleData(rng)
				}
				if err := single.Write(addr, d); err != nil {
					t.Fatal(err)
				}
				if err := sharded.Write(addr, d); err != nil {
					t.Fatal(err)
				}
			}
			// Interleave reads and rewrites.
			for i := 0; i < mixOps; i++ {
				addr := uint64(rng.Intn(blocks)) * BlockBytes
				if i%4 == 0 {
					d := compressibleData(rng)
					if err := single.Write(addr, d); err != nil {
						t.Fatal(err)
					}
					if err := sharded.Write(addr, d); err != nil {
						t.Fatal(err)
					}
					continue
				}
				a, aerr := single.Read(addr)
				b, berr := sharded.Read(addr)
				if (aerr == nil) != (berr == nil) {
					t.Fatalf("read %#x: error mismatch: %v vs %v", addr, aerr, berr)
				}
				if !bytes.Equal(a, b) {
					t.Fatalf("read %#x: data mismatch", addr)
				}
			}
			if err := single.Flush(); err != nil {
				t.Fatal(err)
			}
			if err := sharded.Flush(); err != nil {
				t.Fatal(err)
			}

			// Same single-bit fault campaign on both; same classification.
			injected := 0
			for i := 0; i < 512; i++ {
				addr := uint64(rng.Intn(blocks)) * BlockBytes
				bit := rng.Intn(8 * BlockBytes)
				ia := single.InjectBitFlip(addr, bit)
				ib := sharded.InjectBitFlip(addr, bit)
				if ia != ib {
					t.Fatalf("inject %#x bit %d: residency mismatch %v vs %v", addr, bit, ia, ib)
				}
				if ia {
					injected++
					a, aerr := single.Read(addr)
					b, berr := sharded.Read(addr)
					if (aerr == nil) != (berr == nil) {
						t.Fatalf("post-inject read %#x: %v vs %v", addr, aerr, berr)
					}
					if !bytes.Equal(a, b) {
						t.Fatalf("post-inject read %#x: data mismatch", addr)
					}
				}
			}
			if injected == 0 {
				t.Fatal("fault campaign never hit DRAM-resident blocks")
			}
			sa, sb := single.Stats(), sharded.Stats()
			if sa.CorrectedErrors != sb.CorrectedErrors || sa.UncorrectableErrors != sb.UncorrectableErrors {
				t.Fatalf("classification mismatch: single corrected=%d uncorrectable=%d, sharded corrected=%d uncorrectable=%d",
					sa.CorrectedErrors, sa.UncorrectableErrors, sb.CorrectedErrors, sb.UncorrectableErrors)
			}
			if sa.Loads != sb.Loads || sa.Stores != sb.Stores || sa.Fills != sb.Fills || sa.Writebacks != sb.Writebacks {
				t.Fatalf("traffic mismatch:\nsingle  %+v\nsharded %+v", sa, sb)
			}
		})
	}
}

// TestShardedConcurrentStress hammers one sharded controller with readers,
// writers, and fault injectors on overlapping addresses. Run under -race
// this is the concurrency-safety proof; functionally it checks that every
// op completes, errors are only the expected uncorrectable kind, and the
// op accounting adds up.
func TestShardedConcurrentStress(t *testing.T) {
	const (
		goroutines = 12
		blocks     = 512
	)
	opsPerG := 2500
	if testing.Short() {
		opsPerG = 600
	}
	for _, m := range []memctrl.Mode{memctrl.COP, memctrl.COPER} {
		t.Run(m.String(), func(t *testing.T) {
			c := newSharded(m)
			var wg sync.WaitGroup
			errs := make(chan error, goroutines)
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(seed int64) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(seed))
					buf := compressibleData(rng)
					for i := 0; i < opsPerG; i++ {
						addr := uint64(rng.Intn(blocks)) * BlockBytes
						switch rng.Intn(4) {
						case 0: // writer: compressible
							if err := c.Write(addr, buf); err != nil {
								errs <- fmt.Errorf("write %#x: %w", addr, err)
								return
							}
						case 1: // writer: random (exercises raw/region paths)
							if err := c.Write(addr, randomData(rng)); err != nil {
								errs <- fmt.Errorf("write %#x: %w", addr, err)
								return
							}
						case 2: // injector
							c.InjectBitFlip(addr, rng.Intn(8*BlockBytes))
						default: // reader
							if _, err := c.Read(addr); err != nil && !errors.Is(err, memctrl.ErrUncorrectable) {
								errs <- fmt.Errorf("read %#x: %w", addr, err)
								return
							}
						}
					}
				}(int64(1000 + g))
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatal(err)
			}
			if got, want := c.Ops(), uint64(goroutines*opsPerG); got != want {
				t.Fatalf("Ops() = %d, want %d", got, want)
			}
			st := c.Stats()
			if st.Loads+st.Stores == 0 || st.Loads+st.Stores > uint64(goroutines*opsPerG) {
				t.Fatalf("implausible load/store accounting: %+v", st)
			}
		})
	}
}

// TestShardedConcurrentByteRanges drives WriteBytes/ReadBytes spans that
// straddle shard boundaries from many goroutines. Each goroutine owns a
// disjoint range, so data must round-trip exactly even under concurrency.
func TestShardedConcurrentByteRanges(t *testing.T) {
	c := newSharded(memctrl.COPER)
	const (
		goroutines = 8
		spanBytes  = 1000 // not block-aligned: exercises RMW + crossing
		rounds     = 40
	)
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(7000 + id)))
			base := uint64(id)*8192 + 37 // unaligned on purpose
			want := make([]byte, spanBytes)
			for r := 0; r < rounds; r++ {
				rng.Read(want)
				if err := c.WriteBytes(base, want); err != nil {
					errs <- err
					return
				}
				got, err := c.ReadBytes(base, spanBytes)
				if err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(got, want) {
					errs <- fmt.Errorf("goroutine %d round %d: byte range mismatch", id, r)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestShardedFlushSettlesAllShards(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	c := newSharded(memctrl.COP)
	var addrs []uint64
	for i := 0; i < 64; i++ {
		addr := uint64(i) * BlockBytes // touches every shard in turn
		addrs = append(addrs, addr)
		if err := c.Write(addr, compressibleData(rng)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	for _, addr := range addrs {
		if !c.InDRAM(addr) {
			t.Fatalf("block %#x not in DRAM after Flush", addr)
		}
	}
}

// TestShardedFlushUnderContention runs Flush concurrently with writers and
// readers. Flush must never lose a write: after the storm every
// goroutine's final data is what its blocks hold, and a last Flush leaves
// everything resident in DRAM.
func TestShardedFlushUnderContention(t *testing.T) {
	const (
		writers     = 8
		blocksPer   = 64
		rounds      = 30
		flushers    = 2
		flushesEach = 25
	)
	for _, m := range []memctrl.Mode{memctrl.COP, memctrl.COPER} {
		t.Run(m.String(), func(t *testing.T) {
			c := newSharded(m)
			final := make([][][]byte, writers)
			var wg sync.WaitGroup
			errs := make(chan error, writers+flushers)
			for g := 0; g < writers; g++ {
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(4000 + id)))
					last := make([][]byte, blocksPer)
					for r := 0; r < rounds; r++ {
						for b := 0; b < blocksPer; b++ {
							addr := uint64(id*blocksPer+b) * BlockBytes
							var d []byte
							if (r+b)%3 == 0 {
								d = randomData(rng)
							} else {
								d = compressibleData(rng)
							}
							last[b] = d
							if err := c.Write(addr, d); err != nil {
								errs <- fmt.Errorf("writer %d: %w", id, err)
								return
							}
							if b%7 == 0 {
								if _, err := c.Read(addr); err != nil {
									errs <- fmt.Errorf("reader %d: %w", id, err)
									return
								}
							}
						}
					}
					final[id] = last
				}(g)
			}
			for f := 0; f < flushers; f++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < flushesEach; i++ {
						if err := c.Flush(); err != nil {
							errs <- fmt.Errorf("flush: %w", err)
							return
						}
					}
				}()
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatal(err)
			}
			if err := c.Flush(); err != nil {
				t.Fatal(err)
			}
			for id, last := range final {
				for b, want := range last {
					addr := uint64(id*blocksPer+b) * BlockBytes
					got, err := c.Read(addr)
					if err != nil {
						t.Fatalf("read %#x after contended flushes: %v", addr, err)
					}
					if !bytes.Equal(got, want) {
						t.Fatalf("block %#x lost its last write under contended flushes", addr)
					}
				}
			}
		})
	}
}

// TestShardedInjectedErrorEquivalence drives correctable AND uncorrectable
// injections through a sharded and an unsharded controller in lockstep:
// the error class, returned bytes, decoder observations (ReadWithInfo),
// and stored-form ground truth (StoredKind) must agree access for access.
func TestShardedInjectedErrorEquivalence(t *testing.T) {
	for _, m := range []memctrl.Mode{memctrl.COP, memctrl.COPER, memctrl.ECCDIMM} {
		t.Run(m.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(31))
			single := newUnsharded(m)
			sharded := newSharded(m)
			const blocks = 1024
			for i := 0; i < blocks; i++ {
				addr := uint64(i) * BlockBytes
				var d []byte
				if i%3 == 0 {
					d = randomData(rng)
				} else {
					d = compressibleData(rng)
				}
				if err := single.Write(addr, d); err != nil {
					t.Fatal(err)
				}
				if err := sharded.Write(addr, d); err != nil {
					t.Fatal(err)
				}
			}
			uncorrectable := 0
			for i := 0; i < 400; i++ {
				addr := uint64(rng.Intn(blocks)) * BlockBytes
				if err := single.Settle(addr); err != nil {
					t.Fatal(err)
				}
				if err := sharded.Settle(addr); err != nil {
					t.Fatal(err)
				}
				if ka, kb := single.StoredKind(addr), sharded.StoredKind(addr); ka != kb {
					t.Fatalf("StoredKind(%#x): %v vs %v", addr, ka, kb)
				}
				// Even trials: one flip (correctable). Odd trials: two flips
				// in the same 64-bit word (uncorrectable for SECDED).
				bit := rng.Intn(8 * BlockBytes)
				bits := []int{bit}
				if i%2 == 1 {
					bits = append(bits, bit^1)
				}
				for _, b := range bits {
					ia := single.InjectBitFlip(addr, b)
					ib := sharded.InjectBitFlip(addr, b)
					if ia != ib {
						t.Fatalf("inject %#x bit %d: residency %v vs %v", addr, b, ia, ib)
					}
					if !ia {
						break
					}
				}
				da, ia, aerr := single.ReadWithInfo(addr)
				db, ib, berr := sharded.ReadWithInfo(addr)
				if (aerr == nil) != (berr == nil) {
					t.Fatalf("read %#x: error mismatch %v vs %v", addr, aerr, berr)
				}
				if aerr != nil {
					uncorrectable++
					continue
				}
				if !bytes.Equal(da, db) {
					t.Fatalf("read %#x: data mismatch", addr)
				}
				if m == memctrl.COPER {
					// Raw COP-ER images embed region pointers, and the
					// sharded controller's per-shard regions assign
					// different pointer values than the unsharded one — so
					// the incidental valid-codeword count over those image
					// bits may differ. Every verdict field must still agree.
					ia.ValidCodewords, ib.ValidCodewords = 0, 0
				}
				if ia != ib {
					t.Fatalf("read %#x: ReadWithInfo mismatch %+v vs %+v", addr, ia, ib)
				}
			}
			if uncorrectable == 0 {
				t.Fatal("double-bit campaign produced no uncorrectable reads")
			}
			sa, sb := single.Stats(), sharded.Stats()
			if sa.CorrectedErrors != sb.CorrectedErrors || sa.UncorrectableErrors != sb.UncorrectableErrors {
				t.Fatalf("classification mismatch: single corrected=%d uncorrectable=%d, sharded corrected=%d uncorrectable=%d",
					sa.CorrectedErrors, sa.UncorrectableErrors, sb.CorrectedErrors, sb.UncorrectableErrors)
			}
		})
	}
}

// TestShardedChipFailure checks InjectChipFailure routing: in COPChipkill
// mode every sharded block must survive a whole-chip failure.
func TestShardedChipFailure(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	c := newSharded(memctrl.COPChipkill)
	ref := map[uint64][]byte{}
	for i := 0; i < 32; i++ {
		addr := uint64(i) * BlockBytes
		d := randomData(rng)
		ref[addr] = d
		if err := c.Write(addr, d); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	for addr, want := range ref {
		if !c.InjectChipFailure(addr, int(addr/BlockBytes)%8, 0xA5) {
			t.Fatalf("chip failure injection missed %#x", addr)
		}
		got, err := c.Read(addr)
		if err != nil {
			t.Fatalf("read %#x after chip failure: %v", addr, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("block %#x corrupted by chip failure", addr)
		}
	}
	if c.Stats().CorrectedErrors == 0 {
		t.Fatal("chip-failure corrections not counted")
	}
}

// TestShardedStatsAggregation checks that per-shard counters sum into the
// aggregate view and that the lock-free op counter tracks the call count.
func TestShardedStatsAggregation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	c := newSharded(memctrl.COP)
	const n = 256
	for i := 0; i < n; i++ {
		if err := c.Write(uint64(i)*BlockBytes, compressibleData(rng)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		if _, err := c.Read(uint64(i) * BlockBytes); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.Stores != n || st.Loads != n {
		t.Fatalf("aggregate stats wrong: %+v", st)
	}
	if c.Ops() != 2*n {
		t.Fatalf("Ops() = %d, want %d", c.Ops(), 2*n)
	}
	var manual memctrl.Stats
	for i := 0; i < c.NumShards(); i++ {
		manual.Add(c.Shard(i).Stats())
	}
	if manual != st {
		t.Fatalf("Stats() != sum of shard stats:\n%+v\n%+v", st, manual)
	}
	// The merged telemetry snapshot agrees with the legacy wrappers.
	snap := c.Snapshot()
	if snap.Controller.Loads != st.Loads || snap.Controller.Stores != st.Stores {
		t.Fatalf("Snapshot() disagrees with Stats():\n%+v\n%+v", snap.Controller, st)
	}
	if snap.Scheme != memctrl.COP.String() {
		t.Fatalf("scheme = %q", snap.Scheme)
	}
}

// TestShardedSnapshotUnderTraffic drives concurrent mixed traffic while
// other goroutines repeatedly take merged snapshots — the race detector
// (CI race job) verifies the lock-free counter reads, and monotonicity of
// the observed load count verifies snapshots never go backwards.
func TestShardedSnapshotUnderTraffic(t *testing.T) {
	c := newSharded(memctrl.COP)
	rng := rand.New(rand.NewSource(11))
	const blocks = 512
	for i := 0; i < blocks; i++ {
		if err := c.Write(uint64(i)*BlockBytes, compressibleData(rng)); err != nil {
			t.Fatal(err)
		}
	}
	ops := 4000
	if testing.Short() {
		ops = 800
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	errc := make(chan error, 4)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			wr := rand.New(rand.NewSource(seed))
			for i := 0; i < ops; i++ {
				if _, err := c.Read(uint64(wr.Intn(blocks)) * BlockBytes); err != nil {
					errc <- err
					return
				}
			}
		}(int64(g))
	}
	var snapErr error
	var snapWG sync.WaitGroup
	snapWG.Add(1)
	go func() {
		defer snapWG.Done()
		var last uint64
		for {
			s := c.Snapshot()
			if s.Controller.Loads < last {
				snapErr = fmt.Errorf("loads went backwards: %d -> %d", last, s.Controller.Loads)
				return
			}
			last = s.Controller.Loads
			select {
			case <-stop:
				return
			default:
			}
		}
	}()
	wg.Wait()
	close(stop)
	snapWG.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	if snapErr != nil {
		t.Fatal(snapErr)
	}
	if got := c.Snapshot().Controller.Loads; got != uint64(4*ops) {
		t.Fatalf("final loads = %d, want %d", got, 4*ops)
	}
}
