// Package shard provides a concurrency-safe front-end over
// memctrl.Controller: block addresses are striped across N independent
// per-shard controllers, each serialized by its own mutex, so goroutines
// touching different shards never contend. It is the substrate for
// parallel fault-injection campaigns and multi-client traffic over one
// logical memory image.
//
// Striping is set-index compatible: the shard index is taken from the
// block-address bits directly above the block offset, and those bits are
// then removed from the address handed to the shard's controller. Each
// shard's LLC is 1/N of the configured capacity (a power-of-two set
// count), and a set conflict occurs between two blocks if and only if it
// would occur in the equivalent unsharded controller — single-threaded
// replays produce byte-identical DRAM images and identical hit/miss/
// eviction behavior, sharded or not.
//
// Consistency model: operations on a single block are linearizable (the
// owning shard's mutex orders them). Operations on different blocks are
// independent, exactly as in real multi-channel memory controllers.
// Multi-block calls (ReadBytes/WriteBytes/Flush) are not atomic across
// shard boundaries: concurrent writers to the same byte range can
// interleave per block.
//
// The batched front-end (Batched, batch.go) keeps the same model with one
// refinement: within a dequeued batch, accesses to *different* blocks may
// be reordered for DRAM row locality (FR-FCFS style), while accesses to
// the same block always execute in enqueue order. A caller that needs
// cross-block ordering must wait for the earlier operation's Group before
// enqueueing the later one — exactly the fence a real memory controller
// requires. Single-block linearizability, Flush, and Drain ordering are
// unchanged: a Drain fences every operation whose enqueue returned before
// the Drain began.
package shard

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"cop/internal/memctrl"
	"cop/internal/telemetry"
	"cop/internal/trace"
)

// BlockBytes is the access granularity, re-exported for convenience.
const BlockBytes = memctrl.BlockBytes

// Config parameterizes a sharded controller.
//
// LLC capacity rule — stated once, here, for every front-end that embeds
// this config (cop.ShardedMemoryConfig included): Mem.LLCBytes is the
// TOTAL cache capacity of the logical memory; each shard receives exactly
// LLCBytes/Shards. A sharded and an unsharded controller built from the
// same Mem therefore model the same silicon, and single-threaded replays
// produce identical hit/miss behavior (see the package comment).
type Config struct {
	// Mem configures every per-shard controller. Mem.LLCBytes is the
	// TOTAL capacity (see the Config comment); zero selects the paper's
	// 4 MB / 16-way LLC.
	Mem memctrl.Config
	// Shards is the stripe count and must be a power of two no larger
	// than the LLC set count (so each shard's slice keeps at least one
	// set). Zero means auto: the smallest power of two >= GOMAXPROCS,
	// clamped to the set count. Anything else is a configuration error —
	// Normalize reports it; New panics on it.
	Shards int
}

// Normalize validates cfg and returns it with defaults applied (LLC
// geometry filled in, auto shard count resolved). It is the single
// validation path for sharded configs: an explicit Shards that is not a
// power of two, or that exceeds the LLC set count, is an error — never
// silently rounded.
func (cfg Config) Normalize() (Config, error) {
	if cfg.Mem.LLCBytes == 0 {
		cfg.Mem.LLCBytes = 4 << 20
	}
	if cfg.Mem.LLCWays == 0 {
		cfg.Mem.LLCWays = 16
	}
	totalSets := cfg.Mem.LLCBytes / (cfg.Mem.LLCWays * BlockBytes)
	if totalSets <= 0 || totalSets&(totalSets-1) != 0 {
		return Config{}, fmt.Errorf("shard: LLC of %d bytes / %d ways is not a power-of-two set count", cfg.Mem.LLCBytes, cfg.Mem.LLCWays)
	}
	switch n := cfg.Shards; {
	case n < 0:
		return Config{}, fmt.Errorf("shard: negative shard count %d", n)
	case n == 0:
		auto := nextPow2(runtime.GOMAXPROCS(0))
		if auto > totalSets {
			auto = totalSets
		}
		cfg.Shards = auto
	case n&(n-1) != 0:
		return Config{}, fmt.Errorf("shard: shard count %d is not a power of two", n)
	case n > totalSets:
		return Config{}, fmt.Errorf("shard: %d shards exceed the %d LLC sets (each shard needs at least one set)", n, totalSets)
	}
	return cfg, nil
}

// shardSlot pairs one controller with its lock and a lock-free op counter.
// Slots are heap-allocated individually so the hot counters of different
// shards do not share a cache line.
type shardSlot struct {
	mu   sync.Mutex
	ctrl *memctrl.Controller
	ops  atomic.Uint64
	th   *trace.Handle // this shard's execution-trace ring; nil-safe
}

// traceRoute records the shard-routing step and opens the access's flow.
// Must be called with s.mu held (the handle is single-writer).
func (s *shardSlot) traceRoute(outer, inner uint64, f trace.Flags) {
	s.traceRouteFlow(outer, inner, f, 0)
}

// traceRouteFlow is traceRoute with an externally supplied flow id (0 =
// allocate a fresh one). The batched front-end passes wire trace spans
// here, so a client-generated id follows the access through every layer's
// records down to DRAM.
func (s *shardSlot) traceRouteFlow(outer, inner uint64, f trace.Flags, flow uint64) {
	if s.th.Enabled() {
		if flow != 0 {
			s.th.BeginOuterFlow(flow)
		} else {
			s.th.BeginOuter()
		}
		s.th.Record(trace.KindShardRoute, inner, 0, f, outer, 0, 0)
	}
}

// Controller is a sharded, concurrency-safe memctrl front-end. All methods
// may be called from any number of goroutines.
type Controller struct {
	shards []*shardSlot
	mask   uint64
	logN   uint
	mode   memctrl.Mode
}

// New builds a sharded controller. The zero Config (beyond Mem.Mode) gives
// the paper's 4 MB / 16-way LLC split across GOMAXPROCS-many shards. New
// panics on an invalid config (see Config.Normalize); NewChecked reports
// the error instead.
func New(cfg Config) *Controller {
	c, err := NewChecked(cfg)
	if err != nil {
		panic(err.Error())
	}
	return c
}

// NewChecked builds a sharded controller, returning an error for an
// invalid config instead of panicking.
func NewChecked(cfg Config) (*Controller, error) {
	cfg, err := cfg.Normalize()
	if err != nil {
		return nil, err
	}
	n := cfg.Shards
	perShard := cfg.Mem
	perShard.LLCBytes = cfg.Mem.LLCBytes / n
	// The tracer is attached per shard below (each shard gets its own
	// single-writer ring); memctrl.New would bind every shard to ring 0.
	perShard.Tracer = nil
	c := &Controller{
		shards: make([]*shardSlot, n),
		mask:   uint64(n - 1),
		logN:   log2(n),
		mode:   cfg.Mem.Mode,
	}
	for i := range c.shards {
		c.shards[i] = &shardSlot{ctrl: memctrl.New(perShard)}
	}
	if cfg.Mem.Tracer != nil {
		c.SetTracer(cfg.Mem.Tracer)
	}
	return c, nil
}

// SetTracer attaches an execution-trace flight recorder: the ring set is
// grown to the shard count and each shard records into its own ring through
// its own single-writer handle (the shard mutex serializes writers). Safe
// to call while traffic is running — each handle swap happens under the
// owning shard's lock, so the telemetry handler's /trace/start and
// /trace/stop endpoints can toggle tracing on a live instance. Pass nil to
// detach.
func (c *Controller) SetTracer(t *trace.Tracer) {
	if t != nil {
		t.EnsureShards(len(c.shards))
	}
	for i, s := range c.shards {
		var h *trace.Handle
		if t != nil {
			h = t.Handle(i)
		}
		s.mu.Lock()
		s.th = h
		s.ctrl.AttachTracer(h)
		s.mu.Unlock()
	}
}

// NextPow2 returns the smallest power of two >= n (1 for n <= 0): the
// helper callers use to turn an arbitrary worker count into a valid
// Shards value when they genuinely want rounding.
func NextPow2(n int) int { return nextPow2(n) }

func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

func log2(n int) uint {
	var l uint
	for 1<<l != n {
		l++
	}
	return l
}

// locate returns the slot owning addr and the shard-local address (the
// shard-index bits stripped from the block index, offset preserved).
func (c *Controller) locate(addr uint64) (*shardSlot, uint64) {
	blockIdx := addr / BlockBytes
	inner := (blockIdx>>c.logN)*BlockBytes | (addr % BlockBytes)
	return c.shards[blockIdx&c.mask], inner
}

// NumShards returns the stripe count.
func (c *Controller) NumShards() int { return len(c.shards) }

// Mode returns the protection mode.
func (c *Controller) Mode() memctrl.Mode { return c.mode }

// Read loads the 64-byte block at addr.
func (c *Controller) Read(addr uint64) ([]byte, error) {
	s, inner := c.locate(addr)
	s.ops.Add(1)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.traceRoute(addr, inner, 0)
	return s.ctrl.Read(inner)
}

// ReadWithInfo is Read plus the owning controller's decoder observations
// (see memctrl.ReadInfo).
func (c *Controller) ReadWithInfo(addr uint64) ([]byte, memctrl.ReadInfo, error) {
	s, inner := c.locate(addr)
	s.ops.Add(1)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.traceRoute(addr, inner, 0)
	return s.ctrl.ReadWithInfo(inner)
}

// ReadInto reads the block holding addr into dst (at least BlockBytes
// long) without allocating on the steady-state hit path (see
// memctrl.ReadInto).
func (c *Controller) ReadInto(dst []byte, addr uint64) (memctrl.ReadInfo, error) {
	s, inner := c.locate(addr)
	s.ops.Add(1)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.traceRoute(addr, inner, 0)
	return s.ctrl.ReadInto(dst, inner)
}

// Settle forces the block holding addr out of its shard's LLC and into
// DRAM (see memctrl.Settle) — the per-block fault-injection hook, usable
// while other goroutines drive other blocks.
func (c *Controller) Settle(addr uint64) error {
	s, inner := c.locate(addr)
	s.ops.Add(1)
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ctrl.Settle(inner)
}

// StoredKind returns the ground-truth form of addr's DRAM image (see
// memctrl.StoredKind).
func (c *Controller) StoredKind(addr uint64) memctrl.StoredKind {
	s, inner := c.locate(addr)
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ctrl.StoredKind(inner)
}

// Write stores a full 64-byte block at addr.
func (c *Controller) Write(addr uint64, data []byte) error {
	s, inner := c.locate(addr)
	s.ops.Add(1)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.traceRoute(addr, inner, trace.FlagWrite)
	return s.ctrl.Write(inner, data)
}

// ReadBytes reads an arbitrary byte range, crossing block (and hence
// shard) boundaries as needed. It allocates only the result; use
// ReadBytesInto for the allocation-free form.
func (c *Controller) ReadBytes(addr uint64, n int) ([]byte, error) {
	out := make([]byte, n)
	if err := c.ReadBytesInto(out, addr); err != nil {
		return nil, err
	}
	return out, nil
}

// ReadBytesInto fills dst with len(dst) bytes starting at addr, crossing
// block (and hence shard) boundaries as needed. The per-call scratch block
// lives on the stack, so a read over LLC-resident blocks performs no
// allocations.
func (c *Controller) ReadBytesInto(dst []byte, addr uint64) error {
	var scratch [BlockBytes]byte
	for len(dst) > 0 {
		base := addr &^ (BlockBytes - 1)
		off := int(addr - base)
		take := BlockBytes - off
		if take > len(dst) {
			take = len(dst)
		}
		s, inner := c.locate(base)
		s.ops.Add(1)
		s.mu.Lock()
		s.traceRoute(base, inner, 0)
		_, err := s.ctrl.ReadInto(scratch[:], inner)
		s.mu.Unlock()
		if err != nil {
			return err
		}
		copy(dst[:take], scratch[off:off+take])
		addr += uint64(take)
		dst = dst[take:]
	}
	return nil
}

// WriteBytes writes an arbitrary byte range, performing read-modify-write
// on partially covered blocks. Each covered block is updated atomically
// (its shard is locked across the read-modify-write); the range as a whole
// is not. The RMW scratch block lives on the stack, so writes over
// LLC-resident blocks perform no allocations.
func (c *Controller) WriteBytes(addr uint64, data []byte) error {
	var scratch [BlockBytes]byte
	for len(data) > 0 {
		base := addr &^ (BlockBytes - 1)
		off := int(addr - base)
		take := BlockBytes - off
		if take > len(data) {
			take = len(data)
		}
		s, inner := c.locate(base)
		s.ops.Add(1)
		s.mu.Lock()
		var err error
		if off == 0 && take == BlockBytes {
			s.traceRoute(base, inner, trace.FlagWrite)
			err = s.ctrl.Write(inner, data[:BlockBytes])
		} else {
			// The RMW's internal load is a read and is traced as one; the
			// store opens its own write-flagged flow.
			s.traceRoute(base, inner, 0)
			if _, err = s.ctrl.ReadInto(scratch[:], inner); err == nil {
				copy(scratch[off:off+take], data[:take])
				s.traceRoute(base, inner, trace.FlagWrite)
				err = s.ctrl.Write(inner, scratch[:])
			}
		}
		s.mu.Unlock()
		if err != nil {
			return err
		}
		addr += uint64(take)
		data = data[take:]
	}
	return nil
}

// Flush drains every shard's dirty LLC lines to DRAM. Every shard is
// flushed even when an earlier one errors (each shard's Flush likewise
// drains every line); the first error is returned.
func (c *Controller) Flush() error {
	var ferr error
	for _, s := range c.shards {
		s.mu.Lock()
		err := s.ctrl.Flush()
		s.mu.Unlock()
		if err != nil && ferr == nil {
			ferr = err
		}
	}
	return ferr
}

// Drain quiesces every shard to a fenced state (see memctrl.Drain): all
// dirty non-alias lines reach DRAM, and Quiesced reports true afterwards.
// Every shard is drained even when an earlier one errors; the first error
// is returned.
func (c *Controller) Drain() error {
	var ferr error
	for _, s := range c.shards {
		s.mu.Lock()
		err := s.ctrl.Drain()
		s.mu.Unlock()
		if err != nil && ferr == nil {
			ferr = err
		}
	}
	return ferr
}

// Quiesced reports whether every shard holds no dirty non-alias LLC lines
// (see memctrl.Quiesced).
func (c *Controller) Quiesced() bool {
	for _, s := range c.shards {
		s.mu.Lock()
		q := s.ctrl.Quiesced()
		s.mu.Unlock()
		if !q {
			return false
		}
	}
	return true
}

// InjectBitFlip flips one bit of the DRAM image holding addr (bit 0..511),
// returning false when the block is not resident in DRAM.
func (c *Controller) InjectBitFlip(addr uint64, bit int) bool {
	s, inner := c.locate(addr)
	s.ops.Add(1)
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ctrl.InjectBitFlip(inner, bit)
}

// InjectChipFailure corrupts every byte one chip contributes to the DRAM
// image holding addr, returning false when the block is not resident.
func (c *Controller) InjectChipFailure(addr uint64, chip int, pattern byte) bool {
	s, inner := c.locate(addr)
	s.ops.Add(1)
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ctrl.InjectChipFailure(inner, chip, pattern)
}

// InDRAM reports whether addr has a DRAM image.
func (c *Controller) InDRAM(addr uint64) bool {
	s, inner := c.locate(addr)
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ctrl.InDRAM(inner)
}

// Stats aggregates every shard's counters.
//
// Deprecated: thin wrapper over the merged telemetry snapshot; use
// Snapshot in new code.
func (c *Controller) Stats() memctrl.Stats {
	var total memctrl.Stats
	for _, s := range c.shards {
		s.mu.Lock()
		st := s.ctrl.Stats()
		s.mu.Unlock()
		total.Add(st)
	}
	return total
}

// Snapshot merges every shard's telemetry tree into one Snapshot. All
// section fields are monotonic sums (histograms merge bucket-wise) and
// derived rates are recomputed after the merge, so a sharded and an
// unsharded run of the same single-threaded trace produce byte-identical
// JSON snapshots. Shards are snapshotted lock-free (the counters are
// atomics), so a snapshot never stalls traffic; the result is per-shard
// consistent, not globally instantaneous.
func (c *Controller) Snapshot() telemetry.Snapshot {
	var total telemetry.Snapshot
	for i, s := range c.shards {
		snap := s.ctrl.Snapshot()
		if i == 0 {
			total = snap
		} else {
			total.Merge(snap)
		}
	}
	return total
}

// Ops returns the total operations routed through the controller, summed
// lock-free from per-shard atomic counters. Counted: every state-affecting
// access — reads (Read, ReadWithInfo, ReadInto), writes, per-block
// ReadBytes/ReadBytesInto/WriteBytes updates, Settle, and fault
// injections. Not counted: pure queries (StoredKind, InDRAM) and
// maintenance sweeps (Flush), which touch no per-block access path. The
// counted set is pinned by TestOpsCountsPerMethod.
func (c *Controller) Ops() uint64 {
	var n uint64
	for _, s := range c.shards {
		n += s.ops.Load()
	}
	return n
}

// Shard exposes one per-shard controller for diagnostics and tests. The
// caller owns synchronization: using it while other goroutines drive the
// sharded controller is racy.
func (c *Controller) Shard(i int) *memctrl.Controller { return c.shards[i].ctrl }

// DumpDRAM returns a copy of every resident DRAM image keyed by outer
// block address (the addresses callers use) — the comparison hook for
// migration and resharding equivalence checks. Intended for drained,
// quiescent instances; under concurrent traffic the result is a
// per-shard-consistent sample, not a global instant.
func (c *Controller) DumpDRAM() map[uint64][]byte {
	out := map[uint64][]byte{}
	for i, s := range c.shards {
		s.mu.Lock()
		d := s.ctrl.DumpDRAM()
		s.mu.Unlock()
		for inner, img := range d {
			outerIdx := (inner/BlockBytes)<<c.logN | uint64(i)
			out[outerIdx*BlockBytes] = img
		}
	}
	return out
}
