package shard

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"cop/internal/memctrl"
	"cop/internal/telemetry"
	"cop/internal/trace"
)

// This file is the batched datapath: a front-end over the same per-shard
// controllers as Controller, but with per-shard MPSC request rings and one
// worker goroutine per shard that dequeues *batches* — one lock
// acquisition amortized over up to BatchMax accesses, FR-FCFS-friendly
// reordering within a batch, and the word-parallel codec run back-to-back
// so parity masks and codec scratch stay hot. In-flight requests are
// pure-data Txn records; each shard carries an explicit Mode
// (Enabled / Paused / Draining) and Draining quiesces the shard to a
// fenced, flushed state — the handoff point live scheme migration needs.

// ErrClosed is returned for operations submitted after Close.
var ErrClosed = errors.New("shard: batched controller is closed")

// Mode is a batched shard's controller state.
type Mode int32

const (
	// ModeEnabled accepts and executes requests (the normal state).
	ModeEnabled Mode = iota
	// ModePaused accepts no new requests and executes nothing; requests
	// already in the ring wait until the shard is re-enabled.
	ModePaused
	// ModeDraining accepts no new requests, executes everything already in
	// the ring, then flushes the shard to a fenced state (memctrl.Drain).
	// The fence covers every request whose submit returned before the
	// drain began.
	ModeDraining
	// modeClosed is the terminal state set by Close.
	modeClosed
	// modeRetired is the terminal state a reshard leaves a shard in after
	// its stripes have been cut over to new shards: the worker exits and
	// blocked producers re-resolve the topology instead of waiting.
	modeRetired
)

// String returns the mode name.
func (m Mode) String() string {
	switch m {
	case ModeEnabled:
		return "enabled"
	case ModePaused:
		return "paused"
	case ModeDraining:
		return "draining"
	case modeClosed:
		return "closed"
	case modeRetired:
		return "retired"
	}
	return fmt.Sprintf("mode(%d)", int32(m))
}

// txnOp selects what a Txn does when its batch executes.
type txnOp uint8

const (
	opNone     txnOp = iota
	opRead           // read t.n bytes at t.off within the block into t.dst
	opWrite          // write t.data[:t.n] at t.off (RMW when partial)
	opWriteRaw       // full-block write of t.dst (invalid-length passthrough)
	opFlush
	opSettle
	opInjectBit
	opInjectChip
	opInDRAM
	opStoredKind
)

// Txn is one in-flight request: pure data, copied by value through the
// ring, no closures. Result pointers (dst/info/ok/kind) point into the
// submitting caller's memory and are written by the worker before the
// transaction's group is signalled.
type Txn struct {
	op    txnOp
	off   uint8 // byte offset within the block (opRead/opWrite)
	n     uint8 // byte count within the block (opRead/opWrite)
	pat   byte  // chip pattern (opInjectChip)
	arg   int32 // bit index (opInjectBit) or chip (opInjectChip)
	addr  uint64
	inner uint64
	flow  uint64 // externally supplied trace flow id; 0 = allocate
	data  [BlockBytes]byte  // write payload (copied at submit)
	dst   []byte            // read destination / raw write payload
	info  *memctrl.ReadInfo // decoder observations (optional)
	ok    *bool             // injection / residency result (optional)
	kind  *memctrl.StoredKind
	g     *Group
	err   error // set by the worker before completion
}

// Group tracks the completion of a set of asynchronous transactions: an
// atomic pending count, the first error observed, and a single-waiter
// wakeup. Submitting a window of operations through one Group and calling
// Wait once is the batched front-end's memory-level-parallelism API — it
// is what lets a shard's worker see deep batches. At most one goroutine
// may call Wait at a time, and no operation may be added between the last
// submit and Wait's return.
type Group struct {
	b         *Batched
	submitted int64        // ops submitted since the last Wait; owner-only
	pending   atomic.Int64 // submitted-minus-completed, settled at Wait
	waiting   atomic.Bool
	wake      chan struct{} // cap 1; token committed by exactly one completer
	mu        sync.Mutex
	err       error // first error
}

// completeN retires n transactions, waking the waiter when the group
// empties. Between windows pending rests at zero, so completions that
// outrun Wait's deferred submission count drive it negative and the single
// zero crossing happens exactly when the last operation of a waited-on
// window retires.
func (g *Group) completeN(n int64) {
	if g.pending.Add(-n) == 0 && g.waiting.Load() && g.waiting.CompareAndSwap(true, false) {
		g.wake <- struct{}{}
	}
}

func (g *Group) setErr(err error) {
	g.mu.Lock()
	if g.err == nil {
		g.err = err
	}
	g.mu.Unlock()
}

// Wait blocks until every submitted operation has completed, then returns
// the first error any of them produced (nil if none) and resets the group
// for reuse. The window's operations are accounted to pending here, in one
// atomic add, rather than one per submit — the submitter is a single
// goroutine (the Group contract), so the deferred count is exact.
func (g *Group) Wait() error {
	n := g.submitted
	g.submitted = 0
	if n != 0 && g.pending.Add(n) > 0 {
		g.waiting.Store(true)
		if g.pending.Load() > 0 || !g.waiting.CompareAndSwap(true, false) {
			// Either operations are still pending, or a completer already
			// committed to sending the token — consume it either way.
			<-g.wake
		}
	}
	g.mu.Lock()
	err := g.err
	g.err = nil
	g.mu.Unlock()
	return err
}

// BatchedConfig parameterizes a batched controller.
type BatchedConfig struct {
	// Shard configures the underlying sharded controller (stripe count,
	// protection mode, total LLC capacity — see Config).
	Shard Config
	// RingSize is each shard's request-ring capacity (power of two).
	// Zero selects 256. Producers backpressure when a ring is full.
	RingSize int
	// BatchMax caps how many transactions a worker executes per lock
	// acquisition. Zero selects 64; values above RingSize are clamped.
	BatchMax int
}

// normalize validates cfg and applies defaults.
func (cfg BatchedConfig) normalize() (BatchedConfig, error) {
	if cfg.RingSize == 0 {
		cfg.RingSize = 256
	}
	if cfg.RingSize < 2 || cfg.RingSize&(cfg.RingSize-1) != 0 {
		return BatchedConfig{}, fmt.Errorf("shard: ring size %d is not a power of two >= 2", cfg.RingSize)
	}
	if cfg.BatchMax < 0 {
		return BatchedConfig{}, fmt.Errorf("shard: negative batch max %d", cfg.BatchMax)
	}
	if cfg.BatchMax == 0 {
		cfg.BatchMax = 64
	}
	if cfg.BatchMax > cfg.RingSize {
		cfg.BatchMax = cfg.RingSize
	}
	return cfg, nil
}

// routeEntry maps one stripe to its owning shard. logN rides per entry
// because mid-reshard different stripes are owned by shards built for
// different stripe counts, and the inner (shard-local) address depends on
// the stripe count the OWNER was built for.
type routeEntry struct {
	bs   *batchShard
	logN uint
}

// topology is the batched front-end's immutable routing state. Producers
// load it once per submission (one atomic pointer read), so a reshard can
// cut stripes over to new shards by publishing a fresh topology — the
// datapath never takes a reconfiguration lock. entries is indexed by
// blockIdx & mask and always covers every stripe; bshards lists each
// distinct live shard once (the iteration set for whole-memory sweeps);
// n is the logical stripe count (NumShards); scheme is the committed
// protection mode; inner is an equivalent sharded Controller over the
// same slots, rebuilt when a reshard completes (mid-transition it lags
// the route table — Sharded and Shard are diagnostics, not datapath).
type topology struct {
	mask    uint64
	entries []routeEntry
	bshards []*batchShard
	n       int
	scheme  memctrl.Mode
	inner   *Controller
}

// Batched is the batched, concurrency-safe front-end: the same striping,
// telemetry, and memory image as Controller (a single-threaded replay
// through either produces byte-identical DRAM images and snapshots), but
// requests flow through per-shard rings to per-shard workers instead of
// taking a mutex per access. Synchronous methods mirror Controller's API;
// NewGroup exposes the asynchronous window API that makes batching pay.
//
// Batched is also the substrate for online reconfiguration: Reshard grows
// or shrinks the stripe count under live traffic, and the hooks consumed
// by the migrate package (Reconfigure, WithShard, CommitScheme) let a
// live scheme migration re-encode resident blocks shard by shard. Both
// work by swapping the topology pointer; in-flight and future requests
// re-resolve their route instead of failing.
type Batched struct {
	topo     atomic.Pointer[topology]
	batchMax int
	ringSize int
	gpool    sync.Pool
	wg       sync.WaitGroup

	// reconfMu serializes reconfiguration (Reshard, Reconfigure,
	// SetTracer, Close). Never taken on the datapath.
	reconfMu sync.Mutex
	cfg      BatchedConfig // normalized current logical config (reconfMu)
	tracer   *trace.Tracer // attached flight recorder (reconfMu)
	closed   bool          // set by Close (reconfMu)

	// Retired-shard accumulators: when a reshard retires a shard its final
	// counters fold in here, keeping Ops/Stats/Snapshot monotonic across
	// topology swaps.
	retiredOps   atomic.Uint64
	retiredMu    sync.Mutex
	retiredTel   telemetry.Snapshot
	haveRetired  bool
	retiredStats memctrl.Stats
	retiredBatch telemetry.BatchStats

	// migTel counts reconfiguration progress (scheme migrations, reshards,
	// chunks, blocks); surfaced as the Migration snapshot section.
	migTel telemetry.MigrationCounters
}

// batchShard is one shard's batching state around its shardSlot.
type batchShard struct {
	ring     *txnRing
	slot     *shardSlot
	idx      int          // stripe index within the topology the shard was built for
	logN     uint         // log2 of that topology's stripe count
	inflight atomic.Int64 // producers between route resolution and publish
	mode     atomic.Int32 // Mode; fast-path mirror of the mu-guarded state
	sleeping atomic.Bool  // worker parked (or parking)
	wake     chan struct{}
	mu       sync.Mutex // guards mode transitions, fenced, drainErr
	cond     *sync.Cond // broadcast on mode change and on fence completion
	fenced   bool
	drainErr error
	tel      telemetry.BatchCounters
}

// newBatchShard builds one shard's batching state (worker not started).
func newBatchShard(ringSize int, slot *shardSlot, idx int, logN uint) *batchShard {
	bs := &batchShard{
		ring: newTxnRing(ringSize),
		slot: slot,
		idx:  idx,
		logN: logN,
		wake: make(chan struct{}, 1),
	}
	bs.cond = sync.NewCond(&bs.mu)
	return bs
}

// NewBatched builds a batched controller, panicking on an invalid config
// (NewBatchedChecked reports the error instead). The workers it starts are
// released by Close.
func NewBatched(cfg BatchedConfig) *Batched {
	b, err := NewBatchedChecked(cfg)
	if err != nil {
		panic(err.Error())
	}
	return b
}

// NewBatchedChecked builds a batched controller, returning an error for an
// invalid config instead of panicking.
func NewBatchedChecked(cfg BatchedConfig) (*Batched, error) {
	cfg, err := cfg.normalize()
	if err != nil {
		return nil, err
	}
	// Normalize the shard config here as well (NewChecked re-normalizes,
	// idempotently) so the stored config carries the resolved stripe count
	// and LLC geometry a later Reshard scales from.
	scfg, err := cfg.Shard.Normalize()
	if err != nil {
		return nil, err
	}
	cfg.Shard = scfg
	inner, err := NewChecked(scfg)
	if err != nil {
		return nil, err
	}
	n := len(inner.shards)
	b := &Batched{
		batchMax: cfg.BatchMax,
		ringSize: cfg.RingSize,
		cfg:      cfg,
		tracer:   scfg.Mem.Tracer,
	}
	b.gpool.New = func() any { return &Group{wake: make(chan struct{}, 1)} }
	bshards := make([]*batchShard, n)
	entries := make([]routeEntry, n)
	for i := range bshards {
		bshards[i] = newBatchShard(cfg.RingSize, inner.shards[i], i, inner.logN)
		entries[i] = routeEntry{bshards[i], inner.logN}
	}
	b.topo.Store(&topology{
		mask:    inner.mask,
		entries: entries,
		bshards: bshards,
		n:       n,
		scheme:  scfg.Mem.Mode,
		inner:   inner,
	})
	b.wg.Add(n)
	for _, bs := range bshards {
		go b.run(bs)
	}
	return b, nil
}

// --- submission ---------------------------------------------------------

// reserve resolves addr through the current topology, gates on the owning
// shard's mode, accounts the submission to g, and claims a ring cell,
// blocking while the shard is not Enabled. The caller fills c.txn in place
// (every field the operation's execution reads — see txnRing.reserve) and
// hands it off with bs.publish, which also drops the inflight hold taken
// here. Returns ok=false after Close, with ErrClosed already recorded on g.
//
// The inflight counter is the reshard quiesce handshake: it is raised
// BEFORE the mode check, so a producer that observed ModeEnabled is
// visible to a resharder that flipped the mode afterwards and now waits
// for inflight to reach zero (the mode store and the inflight load are
// both sequentially consistent atomics). A producer that observes any
// other mode backs out its hold and waits; retirement sends it back here
// to re-resolve the (by then updated) topology.
func (b *Batched) reserve(g *Group, addr uint64) (bs *batchShard, inner uint64, c *txnCell, pos uint64, ok bool) {
	blockIdx := addr / BlockBytes
	for {
		topo := b.topo.Load()
		e := topo.entries[blockIdx&topo.mask]
		bs = e.bs
		bs.inflight.Add(1)
		if Mode(bs.mode.Load()) == ModeEnabled {
			g.submitted++
			inner = (blockIdx>>e.logN)*BlockBytes | (addr % BlockBytes)
			c, pos = bs.ring.reserve()
			return bs, inner, c, pos, true
		}
		bs.inflight.Add(-1)
		switch bs.await() {
		case awaitReady, awaitReroute:
			// Re-resolve: the shard was re-enabled, or it retired and the
			// published topology now routes this stripe elsewhere.
		case awaitClosed:
			g.setErr(ErrClosed)
			return nil, 0, nil, 0, false
		}
	}
}

// publish makes a filled cell visible to the worker, releases the
// submission's inflight hold, and wakes the worker.
func (bs *batchShard) publish(c *txnCell, pos uint64) {
	bs.ring.publish(c, pos)
	bs.inflight.Add(-1)
	bs.wakeWorker()
}

// submit routes and copies a fully built prototype transaction (addr set)
// into its shard's ring and binds it to g — the generic path used by the
// synchronous API, where one struct copy per op is irrelevant next to the
// Wait round-trip. (The asynchronous Group methods fill their cells in
// place instead.)
func (b *Batched) submit(g *Group, t *Txn) {
	bs, inner, c, pos, ok := b.reserve(g, t.addr)
	if !ok {
		return
	}
	t.inner = inner
	t.g = g
	c.txn = *t
	bs.publish(c, pos)
}

// awaitVerdict is await's outcome.
type awaitVerdict int

const (
	awaitReady   awaitVerdict = iota // shard re-enabled; claim from it
	awaitReroute                     // shard retired; re-resolve topology
	awaitClosed                      // front-end closed; fail the op
)

// await blocks while the shard is Paused or Draining.
func (bs *batchShard) await() awaitVerdict {
	bs.mu.Lock()
	defer bs.mu.Unlock()
	for {
		switch Mode(bs.mode.Load()) {
		case ModeEnabled:
			return awaitReady
		case modeRetired:
			return awaitReroute
		case modeClosed:
			return awaitClosed
		}
		bs.cond.Wait()
	}
}

// wakeWorker hands the parked worker a wake token. The CAS commits exactly
// one token per park episode, so the cap-1 send never blocks; the leading
// load keeps the running-worker fast path free of atomic read-modify-writes.
func (bs *batchShard) wakeWorker() {
	if bs.sleeping.Load() && bs.sleeping.CompareAndSwap(true, false) {
		bs.wake <- struct{}{}
	}
}

// park blocks the worker until a producer or mode change wakes it. ready
// is re-evaluated after the sleeping flag is visible, so a wakeup that
// raced the park is never lost; spurious wakeups are possible and the
// worker loop tolerates them.
func (bs *batchShard) park(ready func() bool) {
	bs.sleeping.Store(true)
	if ready() && bs.sleeping.CompareAndSwap(true, false) {
		return
	}
	<-bs.wake
}

// --- worker -------------------------------------------------------------

// run is one shard's worker loop: dequeue a batch, execute it under a
// single lock acquisition, signal completions; park when idle.
func (b *Batched) run(bs *batchShard) {
	defer b.wg.Done()
	batch := make([]*Txn, 0, b.batchMax)
	gcs := make([]groupCount, 0, b.batchMax)
	rs := newRowSorter(b.batchMax)
	var scratch [BlockBytes]byte
	for {
		m := Mode(bs.mode.Load())
		if m == ModePaused {
			bs.park(func() bool { return Mode(bs.mode.Load()) != ModePaused })
			continue
		}
		batch = bs.ring.peek(batch[:0], b.batchMax)
		if len(batch) > 0 {
			bs.exec(batch, gcs, rs, &scratch)
			bs.ring.release(len(batch))
			continue
		}
		switch m {
		case modeClosed:
			return
		case modeRetired:
			// Retirement follows a quiesce (inflight drained to zero under
			// a non-Enabled mode), so nothing can be published after this
			// point: an empty ring is empty forever.
			return
		case ModeDraining:
			bs.completeDrain()
		}
		bs.park(func() bool {
			return !bs.ring.empty() || Mode(bs.mode.Load()) != m
		})
	}
}

// groupCount accumulates one batch's completions per distinct group, so
// a group submitting many operations into one batch is retired with a
// single atomic add instead of one per transaction.
type groupCount struct {
	g *Group
	n int64
}

// exec runs one peeked batch in place: reorder for row locality, take the
// shard lock once, execute every transaction, then signal completions
// outside the lock. The caller releases the ring cells afterwards, so no
// Txn is ever copied out of the ring.
func (bs *batchShard) exec(batch []*Txn, gcs []groupCount, rs *rowSorter, scratch *[BlockBytes]byte) {
	depth := uint64(len(batch))
	bs.tel.Enqueued.Add(depth)
	bs.tel.Batches.Inc()
	bs.tel.Depth.Observe(depth)
	bs.tel.MaxDepth.Observe(depth)
	rs.reorder(batch)
	s := bs.slot
	s.mu.Lock()
	if s.th.Enabled() {
		s.th.ResetFlow()
		s.th.Record(trace.KindBatchBegin, 0, uint32(depth), 0, 0, 0, 0)
	}
	for _, t := range batch {
		bs.execOne(t, scratch)
	}
	if s.th.Enabled() {
		s.th.ResetFlow()
		s.th.Record(trace.KindBatchEnd, 0, uint32(depth), 0, 0, 0, 0)
	}
	s.mu.Unlock()
	// Coalesce completions per group: the distinct-group count is bounded
	// by the number of concurrent submitters, so the scan stays short.
	gcs = gcs[:0]
	for _, t := range batch {
		if t.err != nil {
			t.g.setErr(t.err)
		}
		k := 0
		for ; k < len(gcs) && gcs[k].g != t.g; k++ {
		}
		if k == len(gcs) {
			gcs = append(gcs, groupCount{t.g, 1})
		} else {
			gcs[k].n++
		}
	}
	for i := range gcs {
		gcs[i].g.completeN(gcs[i].n)
	}
}

// execOne executes one transaction under the shard lock, mirroring the
// sharded Controller's per-operation sequence (op count, route record,
// controller call) exactly — that is what makes single-threaded replays
// byte-identical between the two front-ends.
func (bs *batchShard) execOne(t *Txn, scratch *[BlockBytes]byte) {
	s := bs.slot
	switch t.op {
	case opRead:
		s.ops.Add(1)
		s.traceRouteFlow(t.addr, t.inner, 0, t.flow)
		if t.off == 0 && int(t.n) == BlockBytes {
			info, err := s.ctrl.ReadInto(t.dst, t.inner)
			if t.info != nil {
				*t.info = info
			}
			t.err = err
			return
		}
		info, err := s.ctrl.ReadInto(scratch[:], t.inner)
		if t.info != nil {
			*t.info = info
		}
		if err == nil {
			copy(t.dst, scratch[t.off:int(t.off)+int(t.n)])
		}
		t.err = err
	case opWrite:
		s.ops.Add(1)
		if t.off == 0 && int(t.n) == BlockBytes {
			s.traceRouteFlow(t.addr, t.inner, trace.FlagWrite, t.flow)
			t.err = s.ctrl.Write(t.inner, t.data[:])
			return
		}
		// RMW: the internal load is a read and is traced as one; the
		// store opens its own write-flagged flow (same as WriteBytes).
		s.traceRouteFlow(t.addr, t.inner, 0, t.flow)
		if _, err := s.ctrl.ReadInto(scratch[:], t.inner); err != nil {
			t.err = err
		} else {
			copy(scratch[t.off:int(t.off)+int(t.n)], t.data[:t.n])
			s.traceRouteFlow(t.addr, t.inner, trace.FlagWrite, t.flow)
			t.err = s.ctrl.Write(t.inner, scratch[:])
		}
	case opWriteRaw:
		s.ops.Add(1)
		s.traceRouteFlow(t.addr, t.inner, trace.FlagWrite, t.flow)
		t.err = s.ctrl.Write(t.inner, t.dst)
	case opFlush:
		t.err = s.ctrl.Flush()
	case opSettle:
		s.ops.Add(1)
		t.err = s.ctrl.Settle(t.inner)
	case opInjectBit:
		s.ops.Add(1)
		ok := s.ctrl.InjectBitFlip(t.inner, int(t.arg))
		if t.ok != nil {
			*t.ok = ok
		}
	case opInjectChip:
		s.ops.Add(1)
		ok := s.ctrl.InjectChipFailure(t.inner, int(t.arg), t.pat)
		if t.ok != nil {
			*t.ok = ok
		}
	case opInDRAM:
		if t.ok != nil {
			*t.ok = s.ctrl.InDRAM(t.inner)
		}
	case opStoredKind:
		if t.kind != nil {
			*t.kind = s.ctrl.StoredKind(t.inner)
		}
	}
}

// completeDrain flushes the shard and publishes the fence. Re-invoked on
// every idle pass while Draining, so a straggler that raced the drain is
// re-fenced as soon as it has executed.
func (bs *batchShard) completeDrain() {
	s := bs.slot
	s.mu.Lock()
	err := s.ctrl.Drain()
	s.mu.Unlock()
	bs.mu.Lock()
	if !bs.fenced {
		bs.fenced = true
		bs.tel.Drains.Inc()
	}
	if err != nil && bs.drainErr == nil {
		bs.drainErr = err
	}
	bs.cond.Broadcast()
	bs.mu.Unlock()
}

// --- FR-FCFS batch reordering ------------------------------------------

// batchRowShift approximates DRAM row granularity for batch scheduling:
// blocks within the same 8 KB span share a row, so sorting a batch by row
// id turns scattered accesses into row-buffer-friendly runs.
const batchRowShift = 13

// rowSorter is one worker's reusable scratch for batch reordering: a
// scatter buffer and a counting array. Allocation-free after construction.
type rowSorter struct {
	out    []*Txn
	counts [257]uint32
}

func newRowSorter(batchMax int) *rowSorter {
	return &rowSorter{out: make([]*Txn, batchMax)}
}

// reorder stable-sorts runs of plain reads/writes by DRAM row id.
// Same-block accesses keep their enqueue order (every pass is stable and a
// block never spans rows), preserving single-block linearizability; any
// other operation (flush, settle, injection, query) is a scheduling
// barrier that pins the runs around it. Only the batch's pointers move —
// the Txn records themselves stay put in their ring cells.
func (rs *rowSorter) reorder(batch []*Txn) {
	for i := 0; i < len(batch); {
		if op := batch[i].op; op != opRead && op != opWrite {
			i++
			continue
		}
		j := i + 1
		for j < len(batch) && (batch[j].op == opRead || batch[j].op == opWrite) {
			j++
		}
		rs.sortRunByRow(batch[i:j])
		i = j
	}
}

// sortRunByRow sorts one run on the shard-local row id. A batch of
// neighborly traffic touches a handful of nearby rows, so the common case
// is a stable counting sort over the run's row range — three linear
// passes, no comparisons. Runs scattered over more than 256 distinct rows
// fall back to a stable insertion sort.
func (rs *rowSorter) sortRunByRow(run []*Txn) {
	if len(run) < 2 {
		return
	}
	minRow := run[0].inner >> batchRowShift
	maxRow := minRow
	for _, t := range run[1:] {
		switch r := t.inner >> batchRowShift; {
		case r < minRow:
			minRow = r
		case r > maxRow:
			maxRow = r
		}
	}
	if minRow == maxRow {
		return
	}
	if span := maxRow - minRow; span < 256 {
		counts := rs.counts[:span+2]
		for i := range counts {
			counts[i] = 0
		}
		for _, t := range run {
			counts[(t.inner>>batchRowShift)-minRow+1]++
		}
		for i := 1; i < len(counts); i++ {
			counts[i] += counts[i-1]
		}
		out := rs.out[:len(run)]
		for _, t := range run {
			k := (t.inner >> batchRowShift) - minRow
			out[counts[k]] = t
			counts[k]++
		}
		copy(run, out)
		return
	}
	for i := 1; i < len(run); i++ {
		for j := i; j > 0 && run[j-1].inner>>batchRowShift > run[j].inner>>batchRowShift; j-- {
			run[j-1], run[j] = run[j], run[j-1]
		}
	}
}

// --- synchronous API (mirrors Controller) -------------------------------

func (b *Batched) getGroup() *Group {
	g := b.gpool.Get().(*Group)
	g.b = b
	return g
}

// syncOp submits t in a fresh single-op group and waits it out.
func (b *Batched) syncOp(t *Txn) error {
	g := b.getGroup()
	b.submit(g, t)
	err := g.Wait()
	b.gpool.Put(g)
	return err
}

// Read loads the 64-byte block at addr.
func (b *Batched) Read(addr uint64) ([]byte, error) {
	out := make([]byte, BlockBytes)
	if _, err := b.ReadInto(out, addr); err != nil {
		return nil, err
	}
	return out, nil
}

// ReadWithInfo is Read plus the owning controller's decoder observations.
func (b *Batched) ReadWithInfo(addr uint64) ([]byte, memctrl.ReadInfo, error) {
	out := make([]byte, BlockBytes)
	info, err := b.ReadInto(out, addr)
	if err != nil {
		return nil, info, err
	}
	return out, info, nil
}

// ReadInto reads the block holding addr into dst (at least BlockBytes).
func (b *Batched) ReadInto(dst []byte, addr uint64) (memctrl.ReadInfo, error) {
	var info memctrl.ReadInfo
	t := Txn{op: opRead, n: BlockBytes, addr: addr, dst: dst, info: &info}
	err := b.syncOp(&t)
	return info, err
}

// Write stores a full 64-byte block at addr.
func (b *Batched) Write(addr uint64, data []byte) error {
	t := Txn{op: opWriteRaw, addr: addr, dst: data}
	if len(data) == BlockBytes {
		t.op = opWrite
		t.n = BlockBytes
		t.dst = nil
		copy(t.data[:], data)
	}
	return b.syncOp(&t)
}

// Settle forces the block holding addr out of its shard's LLC (see
// memctrl.Settle).
func (b *Batched) Settle(addr uint64) error {
	return b.syncOp(&Txn{op: opSettle, addr: addr})
}

// StoredKind returns the ground-truth form of addr's DRAM image.
func (b *Batched) StoredKind(addr uint64) memctrl.StoredKind {
	var kind memctrl.StoredKind
	_ = b.syncOp(&Txn{op: opStoredKind, addr: addr, kind: &kind})
	return kind
}

// InDRAM reports whether addr has a DRAM image.
func (b *Batched) InDRAM(addr uint64) bool {
	var ok bool
	_ = b.syncOp(&Txn{op: opInDRAM, addr: addr, ok: &ok})
	return ok
}

// InjectBitFlip flips one bit of the DRAM image holding addr (bit 0..511),
// returning false when the block is not resident in DRAM.
func (b *Batched) InjectBitFlip(addr uint64, bit int) bool {
	var ok bool
	_ = b.syncOp(&Txn{op: opInjectBit, addr: addr, arg: int32(bit), ok: &ok})
	return ok
}

// InjectChipFailure corrupts every byte one chip contributes to the DRAM
// image holding addr, returning false when the block is not resident.
func (b *Batched) InjectChipFailure(addr uint64, chip int, pattern byte) bool {
	var ok bool
	_ = b.syncOp(&Txn{op: opInjectChip, addr: addr, arg: int32(chip), pat: pattern, ok: &ok})
	return ok
}

// ReadBytes reads an arbitrary byte range, crossing block (and hence
// shard) boundaries as needed.
func (b *Batched) ReadBytes(addr uint64, n int) ([]byte, error) {
	out := make([]byte, n)
	if err := b.ReadBytesInto(out, addr); err != nil {
		return nil, err
	}
	return out, nil
}

// ReadBytesInto fills dst from addr. The covered blocks are submitted as
// one group, so a range spanning multiple shards reads them in parallel.
func (b *Batched) ReadBytesInto(dst []byte, addr uint64) error {
	g := b.getGroup()
	for len(dst) > 0 {
		base := addr &^ (BlockBytes - 1)
		off := int(addr - base)
		take := BlockBytes - off
		if take > len(dst) {
			take = len(dst)
		}
		t := Txn{op: opRead, off: uint8(off), n: uint8(take), addr: base, dst: dst[:take]}
		b.submit(g, &t)
		addr += uint64(take)
		dst = dst[take:]
	}
	err := g.Wait()
	b.gpool.Put(g)
	return err
}

// WriteBytes writes an arbitrary byte range, performing read-modify-write
// on partially covered blocks. Each covered block updates atomically; the
// range as a whole is not atomic (same contract as Controller.WriteBytes),
// and the covered blocks are submitted as one group so a range spanning
// multiple shards writes them in parallel.
func (b *Batched) WriteBytes(addr uint64, data []byte) error {
	g := b.getGroup()
	for len(data) > 0 {
		base := addr &^ (BlockBytes - 1)
		off := int(addr - base)
		take := BlockBytes - off
		if take > len(data) {
			take = len(data)
		}
		t := Txn{op: opWrite, off: uint8(off), n: uint8(take), addr: base}
		copy(t.data[:take], data[:take])
		b.submit(g, &t)
		addr += uint64(take)
		data = data[take:]
	}
	err := g.Wait()
	b.gpool.Put(g)
	return err
}

// flushShard submits one opFlush to a specific shard, gating on its mode
// like reserve. Returns false when the shard retired before the claim —
// the caller must re-resolve the topology, because the stripes this flush
// was meant to cover now live elsewhere. A closed front-end records
// ErrClosed on g and reports done.
func (b *Batched) flushShard(bs *batchShard, g *Group) (done bool) {
	for {
		bs.inflight.Add(1)
		if Mode(bs.mode.Load()) == ModeEnabled {
			g.submitted++
			c, pos := bs.ring.reserve()
			t := &c.txn
			t.op = opFlush
			t.g = g
			bs.publish(c, pos)
			return true
		}
		bs.inflight.Add(-1)
		switch bs.await() {
		case awaitReady:
		case awaitReroute:
			return false
		case awaitClosed:
			g.setErr(ErrClosed)
			return true
		}
	}
}

// Flush drains every shard's dirty LLC lines to DRAM (first error wins).
// The flush transactions queue behind everything already submitted, so
// Flush fences all operations whose submit returned before it was called.
// If a concurrent reshard retires a shard mid-Flush, the pass restarts on
// the new topology (flushing a shard twice is harmless).
func (b *Batched) Flush() error {
	g := b.getGroup()
	for {
		topo := b.topo.Load()
		all := true
		for _, bs := range topo.bshards {
			if !b.flushShard(bs, g) {
				all = false
				break
			}
		}
		if all {
			break
		}
		// Settle what was already submitted, then retry on the topology
		// the reshard published.
		if err := g.Wait(); err != nil {
			b.gpool.Put(g)
			return err
		}
	}
	err := g.Wait()
	b.gpool.Put(g)
	return err
}

// --- asynchronous API ---------------------------------------------------

// NewGroup returns a completion group for asynchronous submission. Issue a
// window of Read/Write calls, then Wait once; the deeper the window, the
// deeper the batches the shard workers can execute. The group is reusable
// after Wait.
func (b *Batched) NewGroup() *Group { return b.getGroup() }

// PutGroup returns a group to the front-end's pool for reuse. Callers
// that submit one window per request (the networked serve datapath) would
// otherwise allocate a fresh group — and its wake channel — per frame.
// The group must be quiescent: every issued op waited out, and no further
// use after the call.
func (b *Batched) PutGroup(g *Group) {
	if g == nil || g.b != b {
		return
	}
	b.gpool.Put(g)
}

// Read enqueues an asynchronous full-block read of addr into dst (at
// least BlockBytes long). dst must stay untouched until Wait returns.
// The transaction is filled directly in its ring cell — the submission
// fast path copies no Txn and allocates nothing.
func (g *Group) Read(dst []byte, addr uint64) { g.ReadFlow(dst, addr, 0) }

// ReadFlow is Read with an explicit flight-recorder flow id: the shard
// route record and everything the controller performs underneath (cache
// lookup, decode, DRAM commands) join the given flow instead of
// allocating a fresh one. The networked serve datapath passes wire-derived
// span ids here; flow 0 behaves exactly like Read. The flow is written
// unconditionally because ring cells retain value fields from their
// previous occupant.
func (g *Group) ReadFlow(dst []byte, addr uint64, flow uint64) {
	bs, inner, c, pos, ok := g.b.reserve(g, addr)
	if !ok {
		return
	}
	t := &c.txn
	t.op = opRead
	t.off = 0
	t.n = BlockBytes
	t.addr = addr
	t.inner = inner
	t.flow = flow
	t.dst = dst
	t.g = g
	bs.publish(c, pos)
}

// Write enqueues an asynchronous full-block write. data is copied (once,
// straight into the ring cell) before Write returns, so the caller may
// reuse the buffer immediately.
func (g *Group) Write(addr uint64, data []byte) { g.WriteFlow(addr, data, 0) }

// WriteFlow is Write with an explicit flight-recorder flow id (see
// ReadFlow).
func (g *Group) WriteFlow(addr uint64, data []byte, flow uint64) {
	bs, inner, c, pos, ok := g.b.reserve(g, addr)
	if !ok {
		return
	}
	t := &c.txn
	t.addr = addr
	t.inner = inner
	t.flow = flow
	t.g = g
	if len(data) == BlockBytes {
		t.op = opWrite
		t.off = 0
		t.n = BlockBytes
		copy(t.data[:], data)
	} else {
		// Invalid-length passthrough: carry the caller's slice so the
		// controller's length validation produces the identical error.
		t.op = opWriteRaw
		t.dst = data
	}
	bs.publish(c, pos)
}

// --- mode control -------------------------------------------------------

// setMode publishes m to one shard and wakes everyone who cares. Terminal
// states (retired, closed) are never overwritten — their workers have
// exited, so re-enabling would strand submissions in a ring nobody reads.
func (b *Batched) setMode(bs *batchShard, m Mode) {
	bs.mu.Lock()
	switch Mode(bs.mode.Load()) {
	case modeRetired, modeClosed:
		bs.mu.Unlock()
		return
	}
	bs.mode.Store(int32(m))
	if m != ModeDraining {
		bs.fenced = false
		bs.drainErr = nil
	}
	bs.cond.Broadcast()
	bs.mu.Unlock()
	bs.wakeWorker()
}

// SetShardMode moves shard i to m. Producers targeting a non-Enabled shard
// block until it is re-enabled.
func (b *Batched) SetShardMode(i int, m Mode) { b.setMode(b.topo.Load().bshards[i], m) }

// ShardMode returns shard i's current mode.
func (b *Batched) ShardMode(i int) Mode { return Mode(b.topo.Load().bshards[i].mode.Load()) }

// SetMode moves every shard to m.
func (b *Batched) SetMode(m Mode) {
	for _, bs := range b.topo.Load().bshards {
		b.setMode(bs, m)
	}
}

// Drain moves every shard to ModeDraining and blocks until each is fenced:
// ring empty, executed, and flushed (memctrl.Drain). The fence covers
// every operation whose submit returned before Drain was called;
// operations submitted concurrently with Drain may execute after the
// fence (the worker re-fences as soon as they complete). Returns the first
// flush error. The shards stay Draining — and producers stay blocked —
// until Resume.
func (b *Batched) Drain() error {
	bshards := b.topo.Load().bshards
	for _, bs := range bshards {
		b.setMode(bs, ModeDraining)
	}
	var ferr error
	for _, bs := range bshards {
		bs.mu.Lock()
		for !bs.fenced && Mode(bs.mode.Load()) == ModeDraining {
			bs.cond.Wait()
		}
		if bs.drainErr != nil && ferr == nil {
			ferr = bs.drainErr
		}
		bs.mu.Unlock()
	}
	return ferr
}

// DrainShard is Drain for a single shard — the per-shard quiesce the live
// migration path uses while the other shards keep serving.
func (b *Batched) DrainShard(i int) error {
	bs := b.topo.Load().bshards[i]
	b.setMode(bs, ModeDraining)
	bs.mu.Lock()
	defer bs.mu.Unlock()
	for !bs.fenced && Mode(bs.mode.Load()) == ModeDraining {
		bs.cond.Wait()
	}
	return bs.drainErr
}

// Resume re-enables every shard after a Pause or Drain, unblocking any
// waiting producers.
func (b *Batched) Resume() { b.SetMode(ModeEnabled) }

// Quiesced reports whether every shard holds no dirty non-alias LLC lines
// (true after a successful Drain with no concurrent producers).
func (b *Batched) Quiesced() bool {
	for _, bs := range b.topo.Load().bshards {
		bs.slot.mu.Lock()
		q := bs.slot.ctrl.Quiesced()
		bs.slot.mu.Unlock()
		if !q {
			return false
		}
	}
	return true
}

// Close marks every shard closed and waits for the workers to finish
// whatever is still in the rings. Submissions after Close complete with
// ErrClosed. Callers should wait out their groups before closing;
// submissions racing Close may be dropped with ErrClosed. Close waits out
// any reconfiguration in progress (and fails subsequent ones).
func (b *Batched) Close() {
	b.reconfMu.Lock()
	defer b.reconfMu.Unlock()
	if b.closed {
		return
	}
	b.closed = true
	for _, bs := range b.topo.Load().bshards {
		bs.mu.Lock()
		bs.mode.Store(int32(modeClosed))
		bs.cond.Broadcast()
		bs.mu.Unlock()
		bs.wakeWorker()
	}
	b.wg.Wait()
}

// --- delegation ---------------------------------------------------------

// NumShards returns the stripe count.
func (b *Batched) NumShards() int { return b.topo.Load().n }

// Mode returns the protection mode (the memctrl scheme, not the batch
// Mode — see ShardMode for that). After a committed live migration it
// reports the new scheme.
func (b *Batched) Mode() memctrl.Mode { return b.topo.Load().scheme }

// Ops returns the total operations routed through the controller (same
// counted set as Controller.Ops), including operations executed by shards
// that a reshard has since retired.
func (b *Batched) Ops() uint64 {
	n := b.retiredOps.Load()
	for _, bs := range b.topo.Load().bshards {
		n += bs.slot.ops.Load()
	}
	return n
}

// Stats aggregates every shard's counters (retired shards included).
//
// Deprecated: thin wrapper over the merged telemetry snapshot; use
// Snapshot in new code.
func (b *Batched) Stats() memctrl.Stats {
	var total memctrl.Stats
	for _, bs := range b.topo.Load().bshards {
		bs.slot.mu.Lock()
		st := bs.slot.ctrl.Stats()
		bs.slot.mu.Unlock()
		total.Add(st)
	}
	b.retiredMu.Lock()
	total.Add(b.retiredStats)
	b.retiredMu.Unlock()
	return total
}

// Snapshot merges every shard's telemetry tree and attaches the batch
// section (ring/batch/drain counters merged across shards). Every
// hierarchy section is byte-identical to what the equivalent sharded
// Controller would report for the same single-threaded access sequence;
// the Batch section is the only unconditional addition, and a Migration
// section appears once any reconfiguration has run. Counters from shards
// retired by a reshard stay included via the retired accumulators; a
// snapshot taken while a reshard is mid-cutover may transiently miss the
// shard being folded in.
func (b *Batched) Snapshot() telemetry.Snapshot {
	topo := b.topo.Load()
	var snap telemetry.Snapshot
	batch := &telemetry.BatchStats{}
	for i, bs := range topo.bshards {
		s := bs.slot.ctrl.Snapshot()
		if i == 0 {
			snap = s
		} else {
			snap.Merge(s)
		}
		batch.Merge(bs.tel.Snapshot())
	}
	b.retiredMu.Lock()
	if b.haveRetired {
		snap.Merge(b.retiredTel)
		batch.Merge(b.retiredBatch)
	}
	b.retiredMu.Unlock()
	snap.Batch = batch
	if m := b.migTel.Snapshot(); !m.Zero() {
		snap.Migration = &m
	}
	return snap
}

// MigrationTel exposes the reconfiguration counters for the migrate
// package to advance (chunk and block progress land here and surface in
// Snapshot's Migration section).
func (b *Batched) MigrationTel() *telemetry.MigrationCounters { return &b.migTel }

// SetTracer attaches an execution-trace flight recorder to every live
// shard (safe under live traffic; see Controller.SetTracer). Shards built
// by later reshards inherit the tracer.
func (b *Batched) SetTracer(t *trace.Tracer) {
	b.reconfMu.Lock()
	defer b.reconfMu.Unlock()
	b.tracer = t
	b.cfg.Shard.Mem.Tracer = t
	topo := b.topo.Load()
	if t != nil {
		maxIdx := 0
		for _, bs := range topo.bshards {
			if bs.idx > maxIdx {
				maxIdx = bs.idx
			}
		}
		t.EnsureShards(maxIdx + 1)
	}
	for _, bs := range topo.bshards {
		var h *trace.Handle
		if t != nil {
			h = t.Handle(bs.idx)
		}
		bs.slot.mu.Lock()
		bs.slot.th = h
		bs.slot.ctrl.AttachTracer(h)
		bs.slot.mu.Unlock()
	}
}

// Shard exposes one per-shard controller for diagnostics and tests. The
// caller owns synchronization: using it while workers are executing is
// racy — Drain (or Close) the front-end first.
func (b *Batched) Shard(i int) *memctrl.Controller { return b.topo.Load().bshards[i].slot.ctrl }

// Sharded exposes an equivalent sharded controller over the same slots.
// Mixing direct calls on it with batched submissions is safe (both paths
// take the same shard locks) but forfeits batching for those calls. It is
// rebuilt when a reshard completes; during an active reshard it lags the
// route table, so treat it as diagnostics-only under reconfiguration.
func (b *Batched) Sharded() *Controller { return b.topo.Load().inner }
