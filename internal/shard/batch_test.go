package shard

import (
	"bytes"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"cop/internal/memctrl"
)

// newBatched builds a batched controller over the same geometry as
// newSharded, with a small ring so full-ring backpressure gets exercised.
func newBatched(m memctrl.Mode) *Batched {
	return NewBatched(BatchedConfig{
		Shard:    Config{Mem: memctrl.Config{Mode: m, LLCBytes: 64 * 1024, LLCWays: 8}, Shards: 4},
		RingSize: 32,
		BatchMax: 8,
	})
}

// TestBatchedMatchesShardedReplay drives the same single-threaded mixed
// trace (writes, reads, settles, injections, flushes) through a sharded
// and a batched controller in lockstep and requires byte-identical
// results: every read, every decoder verdict, the DRAM residency and
// stored-kind ground truth of every block, the op counter, and the full
// telemetry snapshot (minus the batch-only section).
func TestBatchedMatchesShardedReplay(t *testing.T) {
	for _, m := range []memctrl.Mode{memctrl.COP, memctrl.COPER} {
		m := m
		t.Run(m.String(), func(t *testing.T) {
			sh := newSharded(m)
			ba := newBatched(m)
			defer ba.Close()
			rng := rand.New(rand.NewSource(0xBA7C4))
			const blocks = 1 << 11 // 8x the aggregate LLC: plenty of evictions

			for i := 0; i < 20000; i++ {
				addr := uint64(rng.Intn(blocks)) * BlockBytes
				switch rng.Intn(10) {
				case 0, 1, 2, 3:
					var data []byte
					if rng.Intn(4) == 0 {
						data = randomData(rng)
					} else {
						data = compressibleData(rng)
					}
					errS := sh.Write(addr, data)
					errB := ba.Write(addr, data)
					if (errS == nil) != (errB == nil) {
						t.Fatalf("op %d: Write(%#x) err sharded=%v batched=%v", i, addr, errS, errB)
					}
				case 4, 5, 6:
					gotS, infoS, errS := sh.ReadWithInfo(addr)
					gotB, infoB, errB := ba.ReadWithInfo(addr)
					if (errS == nil) != (errB == nil) || infoS != infoB || !bytes.Equal(gotS, gotB) {
						t.Fatalf("op %d: ReadWithInfo(%#x) diverged: err %v/%v info %+v/%+v", i, addr, errS, errB, infoS, infoB)
					}
				case 7:
					errS := sh.Settle(addr)
					errB := ba.Settle(addr)
					if (errS == nil) != (errB == nil) {
						t.Fatalf("op %d: Settle(%#x) err sharded=%v batched=%v", i, addr, errS, errB)
					}
				case 8:
					bit := rng.Intn(8 * BlockBytes)
					okS := sh.InjectBitFlip(addr, bit)
					okB := ba.InjectBitFlip(addr, bit)
					if okS != okB {
						t.Fatalf("op %d: InjectBitFlip(%#x,%d) sharded=%v batched=%v", i, addr, bit, okS, okB)
					}
				case 9:
					if rng.Intn(50) == 0 {
						errS := sh.Flush()
						errB := ba.Flush()
						if (errS == nil) != (errB == nil) {
							t.Fatalf("op %d: Flush err sharded=%v batched=%v", i, errS, errB)
						}
					}
				}
			}

			if errS, errB := sh.Flush(), ba.Flush(); (errS == nil) != (errB == nil) {
				t.Fatalf("final Flush err sharded=%v batched=%v", errS, errB)
			}
			if sh.Ops() != ba.Ops() {
				t.Fatalf("Ops: sharded=%d batched=%d", sh.Ops(), ba.Ops())
			}

			// Telemetry snapshots must match byte-for-byte once the batch
			// section (which the sharded front-end does not have) is removed.
			snapB := ba.Snapshot()
			if snapB.Batch == nil || snapB.Batch.Enqueued == 0 || snapB.Batch.Batches == 0 {
				t.Fatalf("batched snapshot is missing batch counters: %+v", snapB.Batch)
			}
			snapB.Batch = nil
			jsS, err := sh.Snapshot().JSON()
			if err != nil {
				t.Fatal(err)
			}
			jsB, err := snapB.JSON()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(jsS, jsB) {
				t.Fatalf("telemetry snapshots diverged:\nsharded: %s\nbatched: %s", jsS, jsB)
			}

			// DRAM ground truth, block by block.
			for blk := 0; blk < blocks; blk++ {
				addr := uint64(blk) * BlockBytes
				if inS, inB := sh.InDRAM(addr), ba.InDRAM(addr); inS != inB {
					t.Fatalf("InDRAM(%#x): sharded=%v batched=%v", addr, inS, inB)
				}
				if kS, kB := sh.StoredKind(addr), ba.StoredKind(addr); kS != kB {
					t.Fatalf("StoredKind(%#x): sharded=%v batched=%v", addr, kS, kB)
				}
			}
		})
	}
}

// TestBatchedRangeOpsMatchUnsharded drives random non-aligned,
// shard-straddling byte ranges through an unsharded reference, the
// sharded front-end, and the batched front-end, and demands identical
// bytes from all three.
func TestBatchedRangeOpsMatchUnsharded(t *testing.T) {
	ref := newUnsharded(memctrl.COP)
	sh := newSharded(memctrl.COP)
	ba := newBatched(memctrl.COP)
	defer ba.Close()
	rng := rand.New(rand.NewSource(0x0B17E5))
	const span = 1 << 16 // bytes of address space

	for i := 0; i < 4000; i++ {
		addr := uint64(rng.Intn(span))
		n := 1 + rng.Intn(4*BlockBytes) // up to 4 blocks: RMW at both ends
		if rng.Intn(2) == 0 {
			data := make([]byte, n)
			rng.Read(data)
			if err := ref.WriteBytes(addr, data); err != nil {
				t.Fatalf("op %d: ref WriteBytes: %v", i, err)
			}
			if err := sh.WriteBytes(addr, data); err != nil {
				t.Fatalf("op %d: sharded WriteBytes: %v", i, err)
			}
			if err := ba.WriteBytes(addr, data); err != nil {
				t.Fatalf("op %d: batched WriteBytes: %v", i, err)
			}
		} else {
			want, err := ref.ReadBytes(addr, n)
			if err != nil {
				t.Fatalf("op %d: ref ReadBytes: %v", i, err)
			}
			gotS, err := sh.ReadBytes(addr, n)
			if err != nil {
				t.Fatalf("op %d: sharded ReadBytes: %v", i, err)
			}
			gotB := make([]byte, n)
			if err := ba.ReadBytesInto(gotB, addr); err != nil {
				t.Fatalf("op %d: batched ReadBytesInto: %v", i, err)
			}
			if !bytes.Equal(want, gotS) || !bytes.Equal(want, gotB) {
				t.Fatalf("op %d: ReadBytes(%#x,%d) diverged\nref:     %x\nsharded: %x\nbatched: %x",
					i, addr, n, want, gotS, gotB)
			}
		}
	}
}

// TestBatchedGroupAsync checks the asynchronous window API: writes and
// reads issued through groups land exactly like synchronous ones.
func TestBatchedGroupAsync(t *testing.T) {
	ba := newBatched(memctrl.COP)
	defer ba.Close()

	const blocks = 512
	want := make([][]byte, blocks)
	g := ba.NewGroup()
	for i := range want {
		want[i] = compressibleData(rand.New(rand.NewSource(int64(i))))
		g.Write(uint64(i)*BlockBytes, want[i])
		if i%64 == 63 {
			if err := g.Wait(); err != nil {
				t.Fatalf("write window %d: %v", i/64, err)
			}
		}
	}
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}

	got := make([][]byte, blocks)
	for i := range got {
		got[i] = make([]byte, BlockBytes)
		g.Read(got[i], uint64(i)*BlockBytes)
		if i%64 == 63 {
			if err := g.Wait(); err != nil {
				t.Fatalf("read window %d: %v", i/64, err)
			}
		}
	}
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if !bytes.Equal(want[i], got[i]) {
			t.Fatalf("block %d: got %x want %x", i, got[i], want[i])
		}
	}
}

// TestBatchedConcurrentStress hammers the batched controller from many
// goroutines through group windows, then checks the exact op count and
// that a final Drain fences everything.
func TestBatchedConcurrentStress(t *testing.T) {
	ba := newBatched(memctrl.COP)
	defer ba.Close()
	const goroutines = 8
	const opsPerG = 3000

	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	for gi := 0; gi < goroutines; gi++ {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(gi)))
			grp := ba.NewGroup()
			// One destination buffer per in-flight slot: concurrent reads
			// in the same window may complete on different shard workers.
			dst := make([]byte, 16*BlockBytes)
			inflight := 0
			for i := 0; i < opsPerG; i++ {
				addr := uint64(rng.Intn(1<<10)) * BlockBytes
				if i%3 == 0 {
					grp.Write(addr, compressibleData(rng))
				} else {
					grp.Read(dst[inflight*BlockBytes:(inflight+1)*BlockBytes], addr)
				}
				inflight++
				if inflight == 16 {
					if err := grp.Wait(); err != nil && errs[gi] == nil {
						errs[gi] = err
					}
					inflight = 0
				}
			}
			if err := grp.Wait(); err != nil && errs[gi] == nil {
				errs[gi] = err
			}
		}(gi)
	}
	wg.Wait()
	for gi, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", gi, err)
		}
	}
	if got, want := ba.Ops(), uint64(goroutines*opsPerG); got != want {
		t.Fatalf("Ops() = %d, want %d", got, want)
	}
	if err := ba.Drain(); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if !ba.Quiesced() {
		t.Fatal("not quiesced after Drain")
	}
	ba.Resume()
}

// TestBatchedDrainFence checks the drain state machine: Drain quiesces
// every shard, a producer submitting during the drain blocks until
// Resume, and the shard modes read back as expected throughout.
func TestBatchedDrainFence(t *testing.T) {
	ba := newBatched(memctrl.COP)
	defer ba.Close()
	rng := rand.New(rand.NewSource(0xD7A1))
	for i := 0; i < 500; i++ {
		addr := uint64(rng.Intn(256)) * BlockBytes
		if err := ba.Write(addr, compressibleData(rng)); err != nil {
			t.Fatal(err)
		}
	}

	if err := ba.Drain(); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if !ba.Quiesced() {
		t.Fatal("not quiesced after Drain")
	}
	for i := 0; i < ba.NumShards(); i++ {
		if m := ba.ShardMode(i); m != ModeDraining {
			t.Fatalf("shard %d mode = %v, want draining", i, m)
		}
	}

	// A producer entering now must block until Resume, then complete.
	done := make(chan error, 1)
	go func() {
		done <- ba.Write(0, compressibleData(rand.New(rand.NewSource(1))))
	}()
	select {
	case err := <-done:
		t.Fatalf("write completed during drain (err=%v)", err)
	case <-time.After(50 * time.Millisecond):
	}
	ba.Resume()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("write after resume: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("write still blocked after Resume")
	}
	for i := 0; i < ba.NumShards(); i++ {
		if m := ba.ShardMode(i); m != ModeEnabled {
			t.Fatalf("shard %d mode = %v, want enabled", i, m)
		}
	}
}

// TestBatchedPauseResume checks that ModePaused holds already-enqueued
// work unexecuted until the shard is re-enabled.
func TestBatchedPauseResume(t *testing.T) {
	ba := newBatched(memctrl.COP)
	defer ba.Close()
	if err := ba.Write(0, compressibleData(rand.New(rand.NewSource(7)))); err != nil {
		t.Fatal(err)
	}
	ba.SetMode(ModePaused)
	done := make(chan error, 1)
	go func() {
		done <- ba.Write(BlockBytes, compressibleData(rand.New(rand.NewSource(8))))
	}()
	select {
	case err := <-done:
		t.Fatalf("write completed while paused (err=%v)", err)
	case <-time.After(50 * time.Millisecond):
	}
	ba.Resume()
	if err := <-done; err != nil {
		t.Fatalf("write after resume: %v", err)
	}
}

// TestBatchedDrainShard drains one shard while the others keep serving —
// the live-migration shape.
func TestBatchedDrainShard(t *testing.T) {
	ba := newBatched(memctrl.COP)
	defer ba.Close()
	rng := rand.New(rand.NewSource(0x51))
	for i := 0; i < 256; i++ {
		if err := ba.Write(uint64(i)*BlockBytes, compressibleData(rng)); err != nil {
			t.Fatal(err)
		}
	}
	if err := ba.DrainShard(0); err != nil {
		t.Fatalf("DrainShard(0): %v", err)
	}
	if m := ba.ShardMode(0); m != ModeDraining {
		t.Fatalf("shard 0 mode = %v, want draining", m)
	}
	// Shard 0 is striped over block indices ≡ 0 (mod 4); the other shards
	// must still serve. Block index 1 lives on shard 1.
	if err := ba.Write(1*BlockBytes, compressibleData(rng)); err != nil {
		t.Fatalf("write to live shard during per-shard drain: %v", err)
	}
	ba.SetShardMode(0, ModeEnabled)
	if err := ba.Write(4*BlockBytes, compressibleData(rng)); err != nil {
		t.Fatalf("write to re-enabled shard: %v", err)
	}
}

// TestBatchedCloseRejects checks that submissions after Close fail with
// ErrClosed instead of deadlocking.
func TestBatchedCloseRejects(t *testing.T) {
	ba := newBatched(memctrl.COP)
	if err := ba.Write(0, compressibleData(rand.New(rand.NewSource(3)))); err != nil {
		t.Fatal(err)
	}
	ba.Close()
	if err := ba.Write(0, compressibleData(rand.New(rand.NewSource(4)))); !errors.Is(err, ErrClosed) {
		t.Fatalf("Write after Close = %v, want ErrClosed", err)
	}
	if _, err := ba.Read(0); !errors.Is(err, ErrClosed) {
		t.Fatalf("Read after Close = %v, want ErrClosed", err)
	}
}

// TestBatchedConfigValidation pins the BatchedConfig error cases.
func TestBatchedConfigValidation(t *testing.T) {
	mem := memctrl.Config{Mode: memctrl.COP, LLCBytes: 64 * 1024, LLCWays: 8}
	for _, tc := range []BatchedConfig{
		{Shard: Config{Mem: mem}, RingSize: 3},
		{Shard: Config{Mem: mem}, RingSize: 1},
		{Shard: Config{Mem: mem}, BatchMax: -1},
		{Shard: Config{Mem: mem, Shards: 3}},
	} {
		if _, err := NewBatchedChecked(tc); err == nil {
			t.Errorf("config %+v: want error, got nil", tc)
		}
	}
	b, err := NewBatchedChecked(BatchedConfig{Shard: Config{Mem: mem}, RingSize: 16, BatchMax: 64})
	if err != nil {
		t.Fatalf("BatchMax clamp: %v", err)
	}
	if b.batchMax != 16 {
		t.Errorf("BatchMax = %d, want clamped to 16", b.batchMax)
	}
	b.Close()
}

// TestBatchedModeString pins the mode names used in logs and errors.
func TestBatchedModeString(t *testing.T) {
	for m, want := range map[Mode]string{
		ModeEnabled:  "enabled",
		ModePaused:   "paused",
		ModeDraining: "draining",
		modeClosed:   "closed",
		Mode(42):     "mode(42)",
	} {
		if got := m.String(); got != want {
			t.Errorf("Mode(%d).String() = %q, want %q", int32(m), got, want)
		}
	}
}

// TestBatchReorderKeepsSameBlockOrder pins the FR-FCFS reorder contract:
// same-block order is preserved, non-read/write ops act as barriers.
func TestBatchReorderKeepsSameBlockOrder(t *testing.T) {
	mk := func(op txnOp, inner uint64, seq int32) Txn {
		return Txn{op: op, inner: inner, arg: seq}
	}
	row := uint64(1) << batchRowShift
	txns := []Txn{
		mk(opRead, 3*row, 0),
		mk(opWrite, 0, 1),
		mk(opRead, 0, 2),
		mk(opSettle, 5*row, 3), // barrier
		mk(opWrite, 4*row, 4),
		mk(opRead, 2*row, 5),
	}
	batch := make([]*Txn, len(txns))
	for i := range txns {
		batch[i] = &txns[i]
	}
	newRowSorter(len(batch)).reorder(batch)
	// First run sorts to rows {0,0,3}; same-block pair (1 then 2) stays
	// ordered. Barrier stays put. Second run sorts to rows {2,4}.
	wantSeq := []int32{1, 2, 0, 3, 5, 4}
	for i, want := range wantSeq {
		if batch[i].arg != want {
			got := make([]int32, len(batch))
			for j := range batch {
				got[j] = batch[j].arg
			}
			t.Fatalf("reordered sequence = %v, want %v", got, wantSeq)
		}
	}
}

// TestBatchReorderScatteredRows drives the insertion-sort fallback (row
// span past the counting-sort window) and cross-checks both sorters
// against each other on the same shuffled run.
func TestBatchReorderScatteredRows(t *testing.T) {
	rng := rand.New(rand.NewSource(0x50F7))
	const n = 64
	txns := make([]Txn, n)
	for i := range txns {
		// Rows scattered over a 4096-row span force the fallback path.
		row := uint64(rng.Intn(4096))
		txns[i] = Txn{op: opRead, inner: row<<batchRowShift | uint64(i), arg: int32(i)}
	}
	batch := make([]*Txn, n)
	for i := range txns {
		batch[i] = &txns[i]
	}
	newRowSorter(n).reorder(batch)
	for i := 1; i < n; i++ {
		prev, cur := batch[i-1].inner>>batchRowShift, batch[i].inner>>batchRowShift
		if prev > cur {
			t.Fatalf("rows out of order at %d: %d > %d", i, prev, cur)
		}
		if prev == cur && batch[i-1].arg > batch[i].arg {
			t.Fatalf("stability broken at %d: seq %d before %d", i, batch[i-1].arg, batch[i].arg)
		}
	}
}

// TestTxnRing pins the MPSC ring's ordering and backpressure behavior.
func TestTxnRing(t *testing.T) {
	r := newTxnRing(8)
	const producers = 4
	const perProducer = 1000
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				c, pos := r.reserve()
				c.txn.addr = uint64(p)
				c.txn.inner = uint64(i)
				r.publish(c, pos)
			}
		}(p)
	}
	seen := make([]uint64, producers)
	total := 0
	var batch []*Txn
	for total < producers*perProducer {
		batch = r.peek(batch[:0], 8)
		for _, tx := range batch {
			p, seq := tx.addr, tx.inner
			if seq != seen[p] {
				t.Fatalf("producer %d: got seq %d, want %d (per-producer FIFO broken)", p, seq, seen[p])
			}
			seen[p]++
			total++
		}
		r.release(len(batch))
	}
	wg.Wait()
	if !r.empty() {
		t.Fatal("ring not empty after draining")
	}
}
