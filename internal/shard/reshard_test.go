package shard

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"cop/internal/memctrl"
)

// reshardOp is one entry of a worker's recorded traffic log: a write of
// version ver, or a read expecting the content of version ver (0 = block
// never written, content unchecked).
type reshardOp struct {
	write bool
	idx   int
	ver   uint32
}

// TestReshardEquivalence splits 4->8 and merges 8->4 stripes while eight
// workers drive recorded traffic over disjoint block ranges, then replays
// the identical per-worker op logs single-threaded on a fresh memory built
// directly at the target shape. The final DRAM images must be
// byte-identical and Ops() must match exactly — stripe moves are not ops.
func TestReshardEquivalence(t *testing.T) {
	for _, tc := range []struct {
		name     string
		from, to int
	}{
		{"split-4-to-8", 4, 8},
		{"merge-8-to-4", 8, 4},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			const (
				workers   = 8
				perWorker = 192
				opsPer    = 2500
			)
			content := func(w, idx int, ver uint32) []byte {
				b := make([]byte, BlockBytes)
				for i := 0; i < 8; i++ {
					binary.BigEndian.PutUint64(b[8*i:],
						0x00001E00_00000000|uint64(w)<<32|uint64(idx)<<8|uint64(ver)&0xFF+uint64(i)<<16)
				}
				return b
			}
			logs := make([][]reshardOp, workers)
			for w := range logs {
				rng := rand.New(rand.NewSource(int64(w)*7919 + int64(tc.from)))
				vers := make([]uint32, perWorker)
				for idx := range vers {
					vers[idx] = 1 // the population pass below writes version 1
				}
				ops := make([]reshardOp, opsPer)
				for i := range ops {
					idx := rng.Intn(perWorker)
					if rng.Intn(3) == 0 {
						vers[idx]++
						ops[i] = reshardOp{write: true, idx: idx, ver: vers[idx]}
					} else {
						ops[i] = reshardOp{idx: idx, ver: vers[idx]}
					}
				}
				logs[w] = ops
			}
			addrOf := func(w, idx int) uint64 { return uint64(w*perWorker+idx) * BlockBytes }
			build := func(n int) *Batched {
				return NewBatched(BatchedConfig{
					Shard:    Config{Mem: memctrl.Config{Mode: memctrl.COP, LLCBytes: 32 * 1024, LLCWays: 8}, Shards: n},
					RingSize: 32,
					BatchMax: 8,
				})
			}

			// populate writes version 1 of every block and settles it to
			// DRAM, so the reshard has resident stripes to move. It is part
			// of the recorded history and replayed identically below.
			populate := func(m *Batched) {
				for w := 0; w < workers; w++ {
					for idx := 0; idx < perWorker; idx++ {
						if err := m.Write(addrOf(w, idx), content(w, idx, 1)); err != nil {
							t.Fatal(err)
						}
					}
				}
				if err := m.Flush(); err != nil {
					t.Fatal(err)
				}
			}

			live := build(tc.from)
			defer live.Close()
			populate(live)
			var wg sync.WaitGroup
			werrs := make(chan error, workers)
			gate := make(chan struct{})
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					<-gate
					for _, op := range logs[w] {
						a := addrOf(w, op.idx)
						if op.write {
							if err := live.Write(a, content(w, op.idx, op.ver)); err != nil {
								werrs <- fmt.Errorf("worker %d write %#x: %w", w, a, err)
								return
							}
							continue
						}
						got, err := live.Read(a)
						if err != nil {
							werrs <- fmt.Errorf("worker %d read %#x: %w", w, a, err)
							return
						}
						if op.ver > 0 && !bytes.Equal(got, content(w, op.idx, op.ver)) {
							werrs <- fmt.Errorf("worker %d read %#x: stale or corrupt data mid-reshard", w, a)
							return
						}
					}
				}(w)
			}
			close(gate)
			if err := live.Reshard(tc.to); err != nil {
				t.Fatalf("Reshard(%d): %v", tc.to, err)
			}
			wg.Wait()
			close(werrs)
			for err := range werrs {
				t.Fatal(err)
			}
			if got := live.NumShards(); got != tc.to {
				t.Fatalf("NumShards = %d after Reshard(%d)", got, tc.to)
			}
			snap := live.Snapshot()
			if snap.Migration == nil || snap.Migration.Reshards != 1 {
				t.Fatalf("reshard telemetry missing or wrong: %+v", snap.Migration)
			}
			if snap.Migration.BlocksMoved == 0 {
				t.Fatal("reshard moved no blocks")
			}
			if err := live.Flush(); err != nil {
				t.Fatal(err)
			}

			replay := build(tc.to)
			defer replay.Close()
			populate(replay)
			for w := 0; w < workers; w++ {
				for _, op := range logs[w] {
					a := addrOf(w, op.idx)
					if op.write {
						if err := replay.Write(a, content(w, op.idx, op.ver)); err != nil {
							t.Fatal(err)
						}
					} else if _, err := replay.Read(a); err != nil {
						t.Fatal(err)
					}
				}
			}
			if err := replay.Flush(); err != nil {
				t.Fatal(err)
			}

			if lo, ro := live.Ops(), replay.Ops(); lo != ro {
				t.Fatalf("Ops: live=%d replay=%d — resharding leaked or swallowed operations", lo, ro)
			}
			liveImg, replayImg := live.DumpDRAM(), replay.DumpDRAM()
			if len(liveImg) != len(replayImg) {
				t.Fatalf("DRAM image count: live=%d replay=%d", len(liveImg), len(replayImg))
			}
			for a, img := range liveImg {
				ref, ok := replayImg[a]
				if !ok {
					t.Fatalf("block %#x present live, absent in replay", a)
				}
				if !bytes.Equal(img, ref) {
					t.Fatalf("block %#x: live image differs from replay-at-target-shape image", a)
				}
			}
		})
	}
}

// TestReshardRoundTripByteIdentical pins the acceptance criterion
// directly: 4 -> 8 -> 4 under single-threaded traffic must land on exactly
// the images a never-resharded memory holds.
func TestReshardRoundTripByteIdentical(t *testing.T) {
	build := func() *Batched {
		return NewBatched(BatchedConfig{
			Shard:    Config{Mem: memctrl.Config{Mode: memctrl.COP, LLCBytes: 32 * 1024, LLCWays: 8}, Shards: 4},
			RingSize: 32,
			BatchMax: 8,
		})
	}
	a, b := build(), build()
	defer a.Close()
	defer b.Close()
	rng := rand.New(rand.NewSource(0x48A))
	const blocks = 1 << 10
	write := func(m *Batched, i int) {
		data := compressibleData(rng)
		if err := m.Write(uint64(i)*BlockBytes, data); err != nil {
			t.Fatal(err)
		}
		if err := b.Write(uint64(i)*BlockBytes, data); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < blocks; i++ {
		write(a, i)
	}
	if err := a.Reshard(8); err != nil {
		t.Fatalf("Reshard(8): %v", err)
	}
	for i := 0; i < blocks; i += 2 {
		write(a, i)
	}
	if err := a.Reshard(4); err != nil {
		t.Fatalf("Reshard(4): %v", err)
	}
	if err := a.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
	ai, bi := a.DumpDRAM(), b.DumpDRAM()
	if len(ai) != len(bi) {
		t.Fatalf("image counts diverged: resharded=%d straight=%d", len(ai), len(bi))
	}
	for addr, img := range ai {
		if !bytes.Equal(img, bi[addr]) {
			t.Fatalf("block %#x differs after 4->8->4 round trip", addr)
		}
	}
}

// TestReshardRejects pins the error paths: non-power-of-two and
// out-of-range stripe counts fail without disturbing the memory, and a
// closed front-end refuses outright.
func TestReshardRejects(t *testing.T) {
	m := NewBatched(BatchedConfig{
		Shard:    Config{Mem: memctrl.Config{Mode: memctrl.COP, LLCBytes: 32 * 1024, LLCWays: 8}, Shards: 4},
		RingSize: 32,
		BatchMax: 8,
	})
	data := make([]byte, BlockBytes)
	data[0] = 0xAB
	if err := m.Write(0, data); err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{0, -1, 3, 6, 1 << 20} {
		if err := m.Reshard(n); err == nil {
			t.Errorf("Reshard(%d) succeeded, want error", n)
		}
	}
	if got := m.NumShards(); got != 4 {
		t.Fatalf("failed reshards changed shard count to %d", got)
	}
	got, err := m.Read(0)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("data disturbed by rejected reshards: %v", err)
	}
	m.Close()
	if err := m.Reshard(8); err == nil {
		t.Fatal("Reshard after Close succeeded")
	}
}
