package shard

import (
	"runtime"
	"sync/atomic"
)

// txnRing is a bounded multi-producer single-consumer ring of Txn records
// (Vyukov's bounded MPSC queue). Producers reserve a slot with one
// fetch-add on tail, fill the transaction IN PLACE, and publish by storing
// the cell's sequence number; the single consumer (the shard's worker
// goroutine) peeks pointers to published cells in order, executes the
// transactions where they sit, and releases the cells a full ring-length
// ahead. Filling and executing in place means a request crosses the ring
// with zero Txn copies — on the submit side only the fields the operation
// actually uses are written, and the worker never copies the record out.
// No locks, no allocation after construction; a full ring backpressures
// producers with a Gosched spin until the worker frees cells.
type txnRing struct {
	mask  uint64
	cells []txnCell
	tail  atomic.Uint64 // next producer slot
	_     [56]byte      // keep the consumer cursor off the producers' line
	head  atomic.Uint64 // next consumer slot; advanced only by the worker
}

// txnCell pairs one in-flight Txn with its publication sequence: seq ==
// pos means "free for the producer that reserved pos", seq == pos+1 means
// "published, ready for the consumer".
type txnCell struct {
	seq atomic.Uint64
	txn Txn
}

// newTxnRing builds a ring of the given power-of-two size.
func newTxnRing(size int) *txnRing {
	r := &txnRing{mask: uint64(size - 1), cells: make([]txnCell, size)}
	for i := range r.cells {
		r.cells[i].seq.Store(uint64(i))
	}
	return r
}

// reserve claims the next slot, spinning while the ring is full, and
// returns its cell and position. The caller owns c.txn exclusively until
// publish: it must set every field the operation's execution reads
// (reference fields are nil and err is cleared from release; value fields
// hold stale data from the previous occupant). Safe for any number of
// concurrent producers.
func (r *txnRing) reserve() (c *txnCell, pos uint64) {
	pos = r.tail.Add(1) - 1
	c = &r.cells[pos&r.mask]
	for c.seq.Load() != pos {
		runtime.Gosched()
	}
	return c, pos
}

// publish hands a reserved, filled cell to the consumer.
func (r *txnRing) publish(c *txnCell, pos uint64) {
	c.seq.Store(pos + 1)
}

// peek appends pointers to up to max published transactions, in enqueue
// order, WITHOUT freeing their cells: the Txns stay valid (and invisible
// to producers) until the matching release. Worker-only.
func (r *txnRing) peek(ptrs []*Txn, max int) []*Txn {
	pos := r.head.Load()
	for len(ptrs) < max {
		c := &r.cells[pos&r.mask]
		if c.seq.Load() != pos+1 {
			break
		}
		ptrs = append(ptrs, &c.txn)
		pos++
	}
	return ptrs
}

// release frees the n oldest peeked cells for producer reuse, dropping
// their reference fields so an idle ring does not pin caller buffers or
// groups until the slot is reclaimed. Worker-only.
func (r *txnRing) release(n int) {
	for ; n > 0; n-- {
		h := r.head.Load()
		c := &r.cells[h&r.mask]
		t := &c.txn
		t.dst = nil
		t.info = nil
		t.ok = nil
		t.kind = nil
		t.g = nil
		t.err = nil
		c.seq.Store(h + uint64(len(r.cells)))
		r.head.Store(h + 1)
	}
}

// empty reports whether every reserved slot has been consumed and
// released. head only advances at release, after execution, so an empty
// ring means every claimed transaction has fully executed — which makes
// this safe to poll from outside the worker (resharding's quiesce does).
func (r *txnRing) empty() bool { return r.tail.Load() == r.head.Load() }

// drained is empty, named for the cross-goroutine quiesce use.
func (r *txnRing) drained() bool { return r.empty() }
