package shard

import (
	"bytes"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"cop/internal/memctrl"
	"cop/internal/trace"
)

// TestOpsCountsPerMethod pins the Ops() counted set documented on
// Controller.Ops: every state-affecting access counts (per covered block
// for range ops), pure queries and maintenance sweeps do not. The same
// table runs against the batched front-end, whose replays must agree.
func TestOpsCountsPerMethod(t *testing.T) {
	type api interface {
		Read(uint64) ([]byte, error)
		ReadWithInfo(uint64) ([]byte, memctrl.ReadInfo, error)
		ReadInto([]byte, uint64) (memctrl.ReadInfo, error)
		Write(uint64, []byte) error
		ReadBytes(uint64, int) ([]byte, error)
		ReadBytesInto([]byte, uint64) error
		WriteBytes(uint64, []byte) error
		Settle(uint64) error
		StoredKind(uint64) memctrl.StoredKind
		InDRAM(uint64) bool
		InjectBitFlip(uint64, int) bool
		InjectChipFailure(uint64, int, byte) bool
		Flush() error
		Ops() uint64
	}

	block := make([]byte, BlockBytes)
	dst := make([]byte, BlockBytes)
	span := make([]byte, 3*BlockBytes)
	cases := []struct {
		name string
		want uint64
		call func(c api)
	}{
		{"Read", 1, func(c api) { _, _ = c.Read(0) }},
		{"ReadWithInfo", 1, func(c api) { _, _, _ = c.ReadWithInfo(0) }},
		{"ReadInto", 1, func(c api) { _, _ = c.ReadInto(dst, 0) }},
		{"Write", 1, func(c api) { _ = c.Write(0, block) }},
		{"Settle", 1, func(c api) { _ = c.Settle(0) }},
		{"InjectBitFlip", 1, func(c api) { _ = c.InjectBitFlip(0, 3) }},
		{"InjectChipFailure", 1, func(c api) { _ = c.InjectChipFailure(0, 0, 0xFF) }},
		// Aligned 3-block range: 3 block updates.
		{"ReadBytes/3-blocks", 3, func(c api) { _, _ = c.ReadBytes(0, 3*BlockBytes) }},
		{"ReadBytesInto/3-blocks", 3, func(c api) { _ = c.ReadBytesInto(span, 0) }},
		{"WriteBytes/3-blocks", 3, func(c api) { _ = c.WriteBytes(0, span) }},
		// Unaligned 1-byte-past-block range: touches 2 blocks.
		{"ReadBytes/straddle", 2, func(c api) { _, _ = c.ReadBytes(BlockBytes-1, 2) }},
		{"WriteBytes/straddle", 2, func(c api) { _ = c.WriteBytes(BlockBytes-1, span[:2]) }},
		// Pure queries and maintenance are not counted.
		{"StoredKind", 0, func(c api) { _ = c.StoredKind(0) }},
		{"InDRAM", 0, func(c api) { _ = c.InDRAM(0) }},
		{"Flush", 0, func(c api) { _ = c.Flush() }},
	}

	fronts := []struct {
		name  string
		build func() (api, func())
	}{
		{"sharded", func() (api, func()) { return newSharded(memctrl.COP), func() {} }},
		{"batched", func() (api, func()) { b := newBatched(memctrl.COP); return b, b.Close }},
	}
	for _, fr := range fronts {
		t.Run(fr.name, func(t *testing.T) {
			c, done := fr.build()
			defer done()
			// Seed a little state so reads/settles take their normal paths.
			for i := 0; i < 8; i++ {
				if err := c.Write(uint64(i)*BlockBytes, block); err != nil {
					t.Fatal(err)
				}
			}
			for _, tc := range cases {
				before := c.Ops()
				tc.call(c)
				if got := c.Ops() - before; got != tc.want {
					t.Errorf("%s: Ops delta = %d, want %d", tc.name, got, tc.want)
				}
			}
		})
	}
}

// TestSetTracerUnderTraffic attaches and detaches a tracer while
// concurrent goroutines hammer both front-ends — the /trace/start-style
// runtime toggle. Run under -race this pins the SetTracer handle swap to
// the shard locks.
func TestSetTracerUnderTraffic(t *testing.T) {
	t.Run("sharded", func(t *testing.T) {
		c := newSharded(memctrl.COP)
		tr := trace.New(trace.Config{})
		tr.Start()
		var stop atomic.Bool
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(g)))
				data := compressibleData(rng)
				for i := 0; !stop.Load(); i++ {
					addr := uint64(rng.Intn(512)) * BlockBytes
					if i%3 == 0 {
						_ = c.Write(addr, data)
					} else {
						_, _ = c.Read(addr)
					}
				}
			}(g)
		}
		for i := 0; i < 200; i++ {
			c.SetTracer(tr)
			c.SetTracer(nil)
		}
		stop.Store(true)
		wg.Wait()
	})
	t.Run("batched", func(t *testing.T) {
		b := newBatched(memctrl.COP)
		defer b.Close()
		tr := trace.New(trace.Config{})
		tr.Start()
		var stop atomic.Bool
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(g)))
				data := compressibleData(rng)
				grp := b.NewGroup()
				dst := make([]byte, 8*BlockBytes) // one buffer per in-flight slot
				for i := 0; !stop.Load(); i++ {
					addr := uint64(rng.Intn(512)) * BlockBytes
					if i%3 == 0 {
						grp.Write(addr, data)
					} else {
						w := i % 8
						grp.Read(dst[w*BlockBytes:(w+1)*BlockBytes], addr)
					}
					if i%8 == 7 {
						_ = grp.Wait()
					}
				}
				_ = grp.Wait()
			}(g)
		}
		for i := 0; i < 200; i++ {
			b.SetTracer(tr)
			b.SetTracer(nil)
		}
		stop.Store(true)
		wg.Wait()
	})
}

// TestShardZeroAllocRangeOps pins the scratch-based range paths: over
// LLC-resident blocks, WriteBytes and ReadBytesInto allocate nothing and
// ReadBytes allocates exactly its result.
func TestShardZeroAllocRangeOps(t *testing.T) {
	c := newSharded(memctrl.COP)
	block := make([]byte, BlockBytes)
	for i := 0; i < 16; i++ {
		if err := c.Write(uint64(i)*BlockBytes, block); err != nil {
			t.Fatal(err)
		}
	}
	span := make([]byte, 3*BlockBytes)
	i := 0
	if n := testing.AllocsPerRun(200, func() {
		addr := uint64(i%4)*BlockBytes + 7 // unaligned: RMW at both ends
		if err := c.WriteBytes(addr, span[:2*BlockBytes+11]); err != nil {
			t.Fatal(err)
		}
		if err := c.ReadBytesInto(span, addr); err != nil {
			t.Fatal(err)
		}
		i++
	}); n != 0 {
		t.Fatalf("range-op hit path allocates %.1f allocs/op, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		if _, err := c.ReadBytes(uint64(i%4)*BlockBytes, 2*BlockBytes); err != nil {
			t.Fatal(err)
		}
		i++
	}); n != 1 {
		t.Fatalf("ReadBytes allocates %.1f allocs/op, want exactly its result (1)", n)
	}
}

// FuzzRangeOps drives arbitrary byte-range traffic through the sharded
// front-end and an unsharded reference and requires byte-identical reads.
// The corpus bytes encode a little op program: each 4-byte group selects
// (op, addr, len) over a small striped address space.
func FuzzRangeOps(f *testing.F) {
	f.Add([]byte{0x00, 0x10, 0x41, 0x7F, 0x81, 0x3F, 0x02, 0xFE})
	f.Add([]byte{0xFF, 0x00, 0x80, 0x40, 0x13, 0x37, 0xBE, 0xEF, 0xCA, 0xFE, 0x00, 0x01})
	f.Fuzz(func(t *testing.T, program []byte) {
		ref := newUnsharded(memctrl.COP)
		sh := newSharded(memctrl.COP)
		const span = 1 << 12
		payload := make([]byte, 2*BlockBytes+2)
		for i := range payload {
			payload[i] = byte(i * 31)
		}
		for p := 0; p+3 < len(program); p += 4 {
			addr := uint64(program[p+1])<<4 | uint64(program[p+2])&0xF
			if addr >= span {
				addr %= span
			}
			n := 1 + int(program[p+3])%(2*BlockBytes+1)
			if program[p]&1 == 0 {
				data := payload[:n]
				errR := ref.WriteBytes(addr, data)
				errS := sh.WriteBytes(addr, data)
				if (errR == nil) != (errS == nil) {
					t.Fatalf("WriteBytes(%#x,%d): ref err %v, sharded err %v", addr, n, errR, errS)
				}
			} else {
				want, errR := ref.ReadBytes(addr, n)
				got, errS := sh.ReadBytes(addr, n)
				if (errR == nil) != (errS == nil) {
					t.Fatalf("ReadBytes(%#x,%d): ref err %v, sharded err %v", addr, n, errR, errS)
				}
				if !bytes.Equal(want, got) {
					t.Fatalf("ReadBytes(%#x,%d): ref %x != sharded %x", addr, n, want, got)
				}
			}
		}
	})
}
