package cop_test

// Benchmark harness: one benchmark per paper table/figure (regenerating
// its rows and reporting the headline number as a custom metric), plus the
// ablation benches for the design choices DESIGN.md calls out and
// throughput microbenchmarks for the codec datapath.
//
// Run everything with:
//
//	go test -bench=. -benchmem
//
// The figure benches use reduced sample counts per iteration; cmd/copbench
// regenerates the full-fidelity tables.

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"testing"

	"cop"
	"cop/internal/compress"
	"cop/internal/core"
	"cop/internal/dram"
	"cop/internal/sim"
	"cop/internal/workload"
)

func benchOpts() cop.ExperimentOptions {
	return cop.ExperimentOptions{Samples: 2000, AliasSamples: 100000, Epochs: 300}
}

// metric extracts a numeric cell (strips % and x) from a report row whose
// first column matches name; col indexes the row.
func metric(b *testing.B, r *cop.ExperimentReport, name string, col int) float64 {
	b.Helper()
	for _, row := range r.Rows {
		if row[0] == name {
			s := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSpace(row[col]), "%"), "x")
			v, err := strconv.ParseFloat(s, 64)
			if err != nil {
				b.Fatalf("parse %q: %v", row[col], err)
			}
			return v
		}
	}
	b.Fatalf("row %q missing", name)
	return 0
}

func runExperimentBench(b *testing.B, id string, report func(*cop.ExperimentReport)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		r, err := cop.RunExperiment(id, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			report(r)
		}
	}
}

// BenchmarkFig1 regenerates the FPC ratio sweep (Figure 1).
func BenchmarkFig1(b *testing.B) {
	runExperimentBench(b, "fig1", func(r *cop.ExperimentReport) {
		b.ReportMetric(metric(b, r, "libquantum", 2), "libquantum_pct_at_10")
	})
}

// BenchmarkFig4 regenerates the shifted-MSB comparison (Figure 4).
func BenchmarkFig4(b *testing.B) {
	runExperimentBench(b, "fig4", func(r *cop.ExperimentReport) {
		b.ReportMetric(metric(b, r, "Average", 3), "avg_shift_gain_pct") // paper: ~15
	})
}

// BenchmarkFig8 regenerates the 8-byte compressibility figure.
func BenchmarkFig8(b *testing.B) {
	runExperimentBench(b, "fig8", func(r *cop.ExperimentReport) {
		b.ReportMetric(metric(b, r, "Average", 4), "combined_avg_pct")
	})
}

// BenchmarkFig9 regenerates the 4-byte compressibility figure.
func BenchmarkFig9(b *testing.B) {
	runExperimentBench(b, "fig9", func(r *cop.ExperimentReport) {
		b.ReportMetric(metric(b, r, "Average", 5), "combined_avg_pct") // paper: 94
	})
}

// BenchmarkFig10 regenerates the error-rate-reduction figure.
func BenchmarkFig10(b *testing.B) {
	runExperimentBench(b, "fig10", func(r *cop.ExperimentReport) {
		b.ReportMetric(metric(b, r, "Average", 2), "cop4_avg_reduction_pct") // paper: 93
	})
}

// BenchmarkFig11 regenerates the normalized-IPC comparison.
func BenchmarkFig11(b *testing.B) {
	runExperimentBench(b, "fig11", func(r *cop.ExperimentReport) {
		b.ReportMetric(metric(b, r, "Geomean", 2), "cop_norm_ipc")
		b.ReportMetric(metric(b, r, "Geomean", 4), "eccreg_norm_ipc")
	})
}

// BenchmarkFig12 regenerates the ECC-storage-reduction figure.
func BenchmarkFig12(b *testing.B) {
	runExperimentBench(b, "fig12", func(r *cop.ExperimentReport) {
		b.ReportMetric(metric(b, r, "Average", 5), "avg_reduction_pct") // paper: 80
	})
}

// BenchmarkTable3 regenerates the incompressible-alias census.
func BenchmarkTable3(b *testing.B) {
	runExperimentBench(b, "table3", func(r *cop.ExperimentReport) {
		b.ReportMetric(metric(b, r, "1", 1), "one_codeword_pct") // paper: 1.4
	})
}

// BenchmarkAlias regenerates the §3.1 alias-probability analytics.
func BenchmarkAlias(b *testing.B) {
	runExperimentBench(b, "alias", func(r *cop.ExperimentReport) {
		b.ReportMetric(metric(b, r, "P(random 128-bit word valid)", 2), "word_valid_pct") // paper: 0.39
	})
}

// --- ablation benches (design choices from DESIGN.md) -------------------

// ablationCompressibility measures combined-scheme coverage over a pooled
// workload sample for one codec config.
func ablationCompressibility(b *testing.B, cfg core.Config) float64 {
	b.Helper()
	codec := core.NewCodec(cfg)
	ok, total := 0, 0
	for _, p := range workload.MemoryIntensiveSet() {
		for _, blk := range p.SampleBlocks(300, 0xAB1A7E) {
			total++
			if codec.Classify(blk) == core.StoredCompressed {
				ok++
			}
		}
	}
	_ = b
	return 100 * float64(ok) / float64(total)
}

// BenchmarkAblationCOP4vsCOP8 contrasts coverage of the two operating
// points (the paper's central trade-off).
func BenchmarkAblationCOP4vsCOP8(b *testing.B) {
	var c4, c8 float64
	for i := 0; i < b.N; i++ {
		c4 = ablationCompressibility(b, core.NewConfig4())
		c8 = ablationCompressibility(b, core.NewConfig8())
	}
	b.ReportMetric(c4, "cop4_coverage_pct")
	b.ReportMetric(c8, "cop8_coverage_pct")
}

// BenchmarkAblationThreshold measures the alias rate on random data at
// detection thresholds 3 and 2 — the §3.1 "orders of magnitude" claim.
func BenchmarkAblationThreshold(b *testing.B) {
	codec := core.NewCodec(core.NewConfig4())
	rng := rand.New(rand.NewSource(7))
	buf := make([]byte, cop.BlockBytes)
	const n = 300000
	var ge2, ge3 int
	for i := 0; i < b.N; i++ {
		ge2, ge3 = 0, 0
		for j := 0; j < n; j++ {
			rng.Read(buf)
			switch cw := codec.CountValidCodewords(buf); {
			case cw >= 3:
				ge3++
				ge2++
			case cw >= 2:
				ge2++
			}
		}
	}
	b.ReportMetric(1e6*float64(ge3)/n, "alias_ppm_thr3")
	b.ReportMetric(1e6*float64(ge2)/n, "alias_ppm_thr2")
}

// BenchmarkAblationStaticHash measures how many repeated-value blocks
// alias with and without the static hash (§3.1's motivation for it).
func BenchmarkAblationStaticHash(b *testing.B) {
	withHash := core.NewCodec(core.NewConfig4())
	noHashCfg := core.NewConfig4()
	noHashCfg.DisableHash = true
	noHash := core.NewCodec(noHashCfg)
	// Blocks holding one 128-bit valid code word repeated four times.
	rng := rand.New(rand.NewSource(9))
	const n = 2000
	var aliasedWith, aliasedWithout int
	for i := 0; i < b.N; i++ {
		aliasedWith, aliasedWithout = 0, 0
		data := make([]byte, 15)
		block := make([]byte, 64)
		for j := 0; j < n; j++ {
			rng.Read(data)
			cw := noHashCfg.Code.Encode(data)
			for s := 0; s < 4; s++ {
				copy(block[16*s:], cw)
			}
			if noHash.IsAlias(block) {
				aliasedWithout++
			}
			if withHash.IsAlias(block) {
				aliasedWith++
			}
		}
	}
	b.ReportMetric(100*float64(aliasedWithout)/n, "aliased_pct_nohash")
	b.ReportMetric(100*float64(aliasedWith)/n, "aliased_pct_hash")
}

// BenchmarkAblationFPCInCombined quantifies why FPC is excluded from the
// hybrid: swapping RLE for FPC loses coverage.
func BenchmarkAblationFPCInCombined(b *testing.B) {
	withRLE := core.NewConfig4()
	withFPC := core.NewConfig4()
	withFPC.Scheme = compress.NewCombinedOf(
		compress.MSB{Shifted: true}, compress.FPC{}, compress.TXT{})
	var rle, fpc float64
	for i := 0; i < b.N; i++ {
		rle = ablationCompressibility(b, withRLE)
		fpc = ablationCompressibility(b, withFPC)
	}
	b.ReportMetric(rle, "with_rle_pct")
	b.ReportMetric(fpc, "with_fpc_pct")
}

// BenchmarkAblationMSBShift quantifies the Figure 4 optimization inside
// the full combined scheme.
func BenchmarkAblationMSBShift(b *testing.B) {
	shifted := core.NewConfig4()
	unshifted := core.NewConfig4()
	unshifted.Scheme = compress.NewCombinedOf(
		compress.MSB{Shifted: false}, compress.RLE{}, compress.TXT{})
	var s, u float64
	for i := 0; i < b.N; i++ {
		s = ablationCompressibility(b, shifted)
		u = ablationCompressibility(b, unshifted)
	}
	b.ReportMetric(s, "shifted_pct")
	b.ReportMetric(u, "unshifted_pct")
}

// BenchmarkAblationRegionPacking contrasts COP-ER's packed 46-bit entries
// against naive per-block 2-byte reservation for a 6%-incompressible
// footprint (the Figure 6 design).
func BenchmarkAblationRegionPacking(b *testing.B) {
	const footprint = 1 << 20 // blocks
	const incompressible = footprint * 6 / 100
	var packed, naive float64
	for i := 0; i < b.N; i++ {
		entryBlocks := (incompressible + 10) / 11
		treeBlocks := 1 + (entryBlocks+500)/501
		packed = float64((entryBlocks + treeBlocks) * 64)
		naive = float64(footprint * 2)
	}
	b.ReportMetric(100*(1-packed/naive), "storage_reduction_pct")
}

// --- codec datapath microbenchmarks --------------------------------------

func BenchmarkEncodeCompressible(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	codec := cop.NewCodec(cop.Config4())
	block := make([]byte, cop.BlockBytes)
	base := uint64(0x00007F00_00000000)
	for i := 0; i < 8; i++ {
		binary.BigEndian.PutUint64(block[8*i:], base|uint64(rng.Intn(1<<20)))
	}
	b.SetBytes(cop.BlockBytes)
	for i := 0; i < b.N; i++ {
		if _, status := codec.Encode(block); status != cop.StoredCompressed {
			b.Fatal("expected compressible")
		}
	}
}

func BenchmarkDecodeCompressible(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	codec := cop.NewCodec(cop.Config4())
	block := make([]byte, cop.BlockBytes)
	base := uint64(0x00007F00_00000000)
	for i := 0; i < 8; i++ {
		binary.BigEndian.PutUint64(block[8*i:], base|uint64(rng.Intn(1<<20)))
	}
	image, _ := codec.Encode(block)
	b.SetBytes(cop.BlockBytes)
	for i := 0; i < b.N; i++ {
		if _, _, err := codec.Decode(image); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDetectRawBlock(b *testing.B) {
	// The cost of the no-metadata detection trick on unprotected data.
	rng := rand.New(rand.NewSource(3))
	codec := cop.NewCodec(cop.Config4())
	block := make([]byte, cop.BlockBytes)
	rng.Read(block)
	b.SetBytes(cop.BlockBytes)
	for i := 0; i < b.N; i++ {
		codec.CountValidCodewords(block)
	}
}

// BenchmarkSimThroughput measures interval-simulator speed (epochs/sec).
func BenchmarkSimThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := sim.DefaultConfig(sim.COP)
		cfg.EpochsPerCore = 500
		if _, err := sim.Run(cfg, "mcf"); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(500*4), "epochs/op")
}

// --- extension benches ----------------------------------------------------

// BenchmarkExtensionChipkill measures COP-CK (the paper's future-work
// chipkill extension): coverage at the steeper 15.6% compression target
// and whole-chip recovery across the protected set.
func BenchmarkExtensionChipkill(b *testing.B) {
	ck := cop.NewChipkillCodec()
	p := workload.MustGet("mcf")
	blocks := p.SampleBlocks(400, 0xCC)
	var coverage, recovery float64
	for i := 0; i < b.N; i++ {
		protected, recovered, trials := 0, 0, 0
		for _, blk := range blocks {
			img, status := ck.Encode(blk)
			if status.String() != "protected" {
				continue
			}
			protected++
			for chip := 0; chip < 8; chip++ {
				dam := append([]byte(nil), img...)
				cop.FailChip(dam, chip, 0x3C)
				got, _, err := ck.Decode(dam)
				trials++
				if err == nil && bytes.Equal(got, blk) {
					recovered++
				}
			}
		}
		coverage = 100 * float64(protected) / float64(len(blocks))
		recovery = 100 * float64(recovered) / float64(trials)
	}
	b.ReportMetric(coverage, "coverage_pct")
	b.ReportMetric(recovery, "chip_recovery_pct")
}

// BenchmarkExtensionAdaptive measures the adaptive two-tier codec: how
// many blocks land in the strong format, and its survival rate under three
// scattered single-bit errors (which silently corrupt plain COP-4).
func BenchmarkExtensionAdaptive(b *testing.B) {
	ac := cop.NewAdaptiveCodec()
	rng := rand.New(rand.NewSource(42))
	p := workload.MustGet("mcf")
	blocks := p.SampleBlocks(400, 0xAD)
	var strongPct, survivePct float64
	for i := 0; i < b.N; i++ {
		strong, survived, trials := 0, 0, 0
		for _, blk := range blocks {
			img, format, status := ac.Encode(blk)
			if status != cop.StoredCompressed {
				continue
			}
			if format == core.FormatStrong {
				strong++
				dam := append([]byte(nil), img...)
				for _, s := range rng.Perm(8)[:3] {
					bit := 64*s + rng.Intn(64)
					dam[bit/8] ^= 1 << (7 - bit%8)
				}
				trials++
				if got, _, _, err := ac.Decode(dam); err == nil && bytes.Equal(got, blk) {
					survived++
				}
			}
		}
		strongPct = 100 * float64(strong) / float64(len(blocks))
		survivePct = 100 * float64(survived) / float64(trials)
	}
	b.ReportMetric(strongPct, "strong_format_pct")
	b.ReportMetric(survivePct, "triple_error_survival_pct")
}

// BenchmarkAblationRefresh quantifies the cost of enabling DRAM refresh in
// the timing model (disabled in the published numbers).
func BenchmarkAblationRefresh(b *testing.B) {
	var base, ref float64
	for i := 0; i < b.N; i++ {
		cfg := sim.DefaultConfig(sim.COP)
		cfg.EpochsPerCore = 400
		res, err := sim.Run(cfg, "mcf")
		if err != nil {
			b.Fatal(err)
		}
		base = res.IPC
		cfg.DRAM = dram.DefaultConfig()
		cfg.DRAM.Timing = dram.DDR31600().WithRefresh()
		res, err = sim.Run(cfg, "mcf")
		if err != nil {
			b.Fatal(err)
		}
		ref = res.IPC
	}
	b.ReportMetric(ref/base, "refresh_norm_ipc")
}

// BenchmarkAblationPagePolicy contrasts open-page (the paper's setting)
// with closed-page auto-precharge under COP.
func BenchmarkAblationPagePolicy(b *testing.B) {
	var open, closed float64
	for i := 0; i < b.N; i++ {
		for _, page := range []dram.PagePolicy{dram.OpenPage, dram.ClosedPage} {
			cfg := sim.DefaultConfig(sim.COP)
			cfg.EpochsPerCore = 400
			cfg.DRAM = dram.DefaultConfig()
			cfg.DRAM.Page = page
			res, err := sim.Run(cfg, "lbm")
			if err != nil {
				b.Fatal(err)
			}
			if page == dram.OpenPage {
				open = res.IPC
			} else {
				closed = res.IPC
			}
		}
	}
	b.ReportMetric(closed/open, "closedpage_norm_ipc")
}

// BenchmarkAblationScheduler contrasts FR-FCFS (the model's default)
// with strict FCFS.
func BenchmarkAblationScheduler(b *testing.B) {
	var fr, fcfs float64
	for i := 0; i < b.N; i++ {
		for _, sched := range []dram.SchedPolicy{dram.FRFCFS, dram.FCFS} {
			cfg := sim.DefaultConfig(sim.COP)
			cfg.EpochsPerCore = 400
			cfg.DRAM = dram.DefaultConfig()
			cfg.DRAM.Sched = sched
			res, err := sim.Run(cfg, "mcf")
			if err != nil {
				b.Fatal(err)
			}
			if sched == dram.FRFCFS {
				fr = res.IPC
			} else {
				fcfs = res.IPC
			}
		}
	}
	b.ReportMetric(fcfs/fr, "fcfs_norm_ipc")
}

// BenchmarkExperimentEnergy regenerates the DRAM energy comparison.
func BenchmarkExperimentEnergy(b *testing.B) {
	runExperimentBench(b, "energy", func(r *cop.ExperimentReport) {
		b.ReportMetric(metric(b, r, "mcf", 5), "eccdimm_norm_energy") // ≈1.125
	})
}

// BenchmarkAblationCPACK adds the C-Pack dictionary compressor (Chen et
// al., TVLSI 2010) to the scheme shootout at COP's low target — like FPC,
// its per-word code overhead keeps it behind RLE here.
func BenchmarkAblationCPACK(b *testing.B) {
	schemes := []compress.Scheme{compress.RLE{}, compress.FPC{}, compress.CPACK{}}
	var fracs [3]float64
	for i := 0; i < b.N; i++ {
		var pool [][]byte
		for _, p := range workload.MemoryIntensiveSet() {
			pool = append(pool, p.SampleBlocks(200, 0xC9AC)...)
		}
		for si, s := range schemes {
			n := 0
			for _, blk := range pool {
				if _, _, ok := s.Compress(blk, compress.MaxBitsCOP4); ok {
					n++
				}
			}
			fracs[si] = 100 * float64(n) / float64(len(pool))
		}
	}
	b.ReportMetric(fracs[0], "rle_pct")
	b.ReportMetric(fracs[1], "fpc_pct")
	b.ReportMetric(fracs[2], "cpack_pct")
}

// --- sharded memory throughput -------------------------------------------

// shardedTrafficBlocks builds a mixed compressible/random working set.
func shardedTrafficBlocks(n int) [][]byte {
	rng := rand.New(rand.NewSource(0x5AAD))
	blocks := make([][]byte, n)
	base := uint64(0x00007F00_00000000)
	for i := range blocks {
		b := make([]byte, cop.BlockBytes)
		if i%4 == 0 {
			rng.Read(b)
		} else {
			for w := 0; w < 8; w++ {
				binary.BigEndian.PutUint64(b[8*w:], base|uint64(rng.Intn(1<<20)))
			}
		}
		blocks[i] = b
	}
	return blocks
}

// BenchmarkShardedThroughput compares aggregate op throughput of the
// sharded controller under 8 concurrent clients against a single-goroutine
// unsharded controller on the same traffic mix. On a multi-core machine
// the 8-shard run should scale well past 2x; on one core it degenerates to
// the locking overhead, which this bench also quantifies.
func BenchmarkShardedThroughput(b *testing.B) {
	const (
		goroutines = 8
		footprint  = 1 << 13 // blocks: 512 KB, 8x the bench LLC
	)
	memCfg := cop.MemoryConfig{Mode: cop.ModeCOP, LLCBytes: 64 * 1024, LLCWays: 8}
	blocks := shardedTrafficBlocks(footprint)

	// worker issues ops/g mixed reads and writes over a private address walk.
	worker := func(read func(uint64) ([]byte, error), write func(uint64, []byte) error, seed int64, ops int) error {
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < ops; i++ {
			idx := rng.Intn(footprint)
			addr := uint64(idx) * cop.BlockBytes
			if i%3 == 0 {
				if err := write(addr, blocks[idx]); err != nil {
					return err
				}
			} else if _, err := read(addr); err != nil {
				return err
			}
		}
		return nil
	}

	b.Run("unsharded-1g", func(b *testing.B) {
		m := cop.NewMemory(memCfg)
		b.SetBytes(cop.BlockBytes)
		if err := worker(m.Read, m.Write, 1, b.N); err != nil {
			b.Fatal(err)
		}
	})
	runSharded := func(b *testing.B, cfg cop.MemoryConfig) {
		m := cop.NewShardedMemory(cop.ShardedMemoryConfig{Mem: cfg, Shards: goroutines})
		b.SetBytes(cop.BlockBytes)
		var wg sync.WaitGroup
		errs := make(chan error, goroutines)
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(seed int64, ops int) {
				defer wg.Done()
				if err := worker(m.Read, m.Write, seed, ops); err != nil {
					errs <- err
				}
			}(int64(g+1), (b.N+goroutines-1)/goroutines)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			b.Fatal(err)
		}
	}
	b.Run("sharded-8g", func(b *testing.B) { runSharded(b, memCfg) })
	// Same traffic with an execution-trace recorder attached but not
	// started: guards the promised disabled-tracing cost (one nil check +
	// one atomic load per record site) against regressions.
	b.Run("sharded-8g-traceoff", func(b *testing.B) {
		cfg := memCfg
		cfg.Tracer = cop.NewTracer(cop.TraceConfig{})
		runSharded(b, cfg)
	})
}

// BenchmarkBatchedThroughput drives the batched front-end with the exact
// traffic mix of BenchmarkShardedThroughput/sharded-8g (8 clients, same
// seeds, same footprint) but through asynchronous groups with a window of
// outstanding operations, so each shard worker dequeues and executes whole
// batches under one lock acquisition. scripts/benchsmoke.sh gates
// batched-8g against sharded-8g staying a win.
func BenchmarkBatchedThroughput(b *testing.B) {
	const (
		goroutines = 8
		footprint  = 1 << 13 // blocks: 512 KB, 8x the bench LLC
		window     = 128     // outstanding ops per client between Waits
	)
	memCfg := cop.MemoryConfig{Mode: cop.ModeCOP, LLCBytes: 64 * 1024, LLCWays: 8}
	blocks := shardedTrafficBlocks(footprint)

	b.Run("batched-8g", func(b *testing.B) {
		m := cop.NewBatchedMemory(cop.BatchedMemoryConfig{
			Shard:    cop.ShardedMemoryConfig{Mem: memCfg, Shards: goroutines},
			RingSize: 4 * window,
			BatchMax: window,
		})
		defer m.Close()
		b.SetBytes(cop.BlockBytes)
		var wg sync.WaitGroup
		errs := make(chan error, goroutines)
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(seed int64, ops int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed))
				grp := m.NewGroup()
				dst := make([]byte, window*cop.BlockBytes) // one slot per in-flight read
				for i := 0; i < ops; i++ {
					idx := rng.Intn(footprint)
					addr := uint64(idx) * cop.BlockBytes
					w := i % window
					if i%3 == 0 {
						grp.Write(addr, blocks[idx])
					} else {
						grp.Read(dst[w*cop.BlockBytes:(w+1)*cop.BlockBytes], addr)
					}
					if w == window-1 {
						if err := grp.Wait(); err != nil {
							errs <- err
							return
						}
					}
				}
				if err := grp.Wait(); err != nil {
					errs <- err
				}
			}(int64(g+1), (b.N+goroutines-1)/goroutines)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			b.Fatal(err)
		}
	})
}

// BenchmarkMigrationOverhead drives the exact traffic mix of
// BenchmarkBatchedThroughput/batched-8g with the patrol scrubber active
// the whole run: the steady-state cost background scrubbing imposes on the
// hot path (per-chunk shard-lock acquisitions interleaving with batches).
// scripts/benchsmoke.sh gates scrub-8g so a scrubber-active memory stays
// within the regression tolerance of the batched-8g baseline.
func BenchmarkMigrationOverhead(b *testing.B) {
	const (
		goroutines = 8
		footprint  = 1 << 13 // blocks: 512 KB, 8x the bench LLC
		window     = 128     // outstanding ops per client between Waits
	)
	memCfg := cop.MemoryConfig{Mode: cop.ModeCOP, LLCBytes: 64 * 1024, LLCWays: 8}
	blocks := shardedTrafficBlocks(footprint)

	b.Run("scrub-8g", func(b *testing.B) {
		m := cop.NewBatchedMemory(cop.BatchedMemoryConfig{
			Shard:    cop.ShardedMemoryConfig{Mem: memCfg, Shards: goroutines},
			RingSize: 4 * window,
			BatchMax: window,
		})
		defer m.Close()
		scrub := cop.NewScrubber(m, cop.ScrubOptions{}) // default 1ms patrol
		scrub.Start()
		defer scrub.Stop()
		b.SetBytes(cop.BlockBytes)
		var wg sync.WaitGroup
		errs := make(chan error, goroutines)
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(seed int64, ops int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed))
				grp := m.NewGroup()
				dst := make([]byte, window*cop.BlockBytes)
				for i := 0; i < ops; i++ {
					idx := rng.Intn(footprint)
					addr := uint64(idx) * cop.BlockBytes
					w := i % window
					if i%3 == 0 {
						grp.Write(addr, blocks[idx])
					} else {
						grp.Read(dst[w*cop.BlockBytes:(w+1)*cop.BlockBytes], addr)
					}
					if w == window-1 {
						if err := grp.Wait(); err != nil {
							errs <- err
							return
						}
					}
				}
				if err := grp.Wait(); err != nil {
					errs <- err
				}
			}(int64(g+1), (b.N+goroutines-1)/goroutines)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			b.Fatal(err)
		}
	})
}

// BenchmarkExtensionChipkillER measures COP-CK-ER: chip-failure recovery
// across ALL blocks (inline and region-backed) on a float-heavy workload
// where plain COP-CK covers almost nothing inline.
func BenchmarkExtensionChipkillER(b *testing.B) {
	p := workload.MustGet("lbm")
	blocks := p.SampleBlocks(200, 0xCE)
	var inlinePct, recovery float64
	for i := 0; i < b.N; i++ {
		er := cop.NewChipkillERCodec()
		type stored struct{ plain, image []byte }
		var set []stored
		inline := 0
		for _, blk := range blocks {
			img, _, isInline, err := er.Write(blk, cop.NoPointer)
			if err != nil {
				b.Fatal(err)
			}
			if isInline {
				inline++
			}
			set = append(set, stored{blk, img})
		}
		recovered, trials := 0, 0
		for chip := 0; chip < 8; chip++ {
			for _, s := range set {
				img := append([]byte(nil), s.image...)
				cop.FailChip(img, chip, 0x5A)
				got, _, err := er.Read(img)
				trials++
				if err == nil && bytes.Equal(got, s.plain) {
					recovered++
				}
			}
		}
		inlinePct = 100 * float64(inline) / float64(len(set))
		recovery = 100 * float64(recovered) / float64(trials)
	}
	b.ReportMetric(inlinePct, "inline_pct")
	b.ReportMetric(recovery, "chip_recovery_pct")
}
