package cop_test

// Integration tests: scenarios that cross package boundaries — the alias
// pipeline from codec through LLC overflow, full-hierarchy soak runs,
// decode-safety fuzzing, and COP-ER region lifecycle.

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"
	"testing/quick"

	"cop"
	"cop/internal/core"
	"cop/internal/memctrl"
	"cop/internal/workload"
)

func TestAliasFloodOverflowsLLCSet(t *testing.T) {
	// Force more incompressible aliases into one LLC set than it has
	// ways: the §3.1 overflow mechanism must retain every one, and none
	// may ever reach DRAM.
	ctrl := memctrl.New(memctrl.Config{Mode: memctrl.COP, LLCBytes: 16 * 1024, LLCWays: 4})
	aliases := makeCoreAliases(t, 10)

	sets := ctrl.LLC().Sets()
	stride := uint64(sets * cop.BlockBytes) // same set every stride
	for i, blk := range aliases {
		addr := uint64(i) * stride // all map to set 0
		if err := ctrl.Write(addr, blk); err != nil {
			t.Fatal(err)
		}
	}
	// Force eviction pressure on set 0 with ordinary compressible data.
	for i := 10; i < 30; i++ {
		b := make([]byte, cop.BlockBytes)
		binary.BigEndian.PutUint64(b, uint64(i))
		if err := ctrl.Write(uint64(i)*stride, b); err != nil {
			t.Fatal(err)
		}
	}
	// Every alias is still retrievable and never reached DRAM.
	for i, want := range aliases {
		addr := uint64(i) * stride
		if ctrl.InDRAM(addr) {
			t.Fatalf("alias %d leaked to DRAM", i)
		}
		got, err := ctrl.Read(addr)
		if err != nil {
			t.Fatalf("alias %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("alias %d corrupted", i)
		}
	}
	if ctrl.LLC().Stats().Spills == 0 {
		t.Fatal("expected set-overflow spills with 10 aliases in a 4-way set")
	}
}

// makeCoreAliases builds n distinct alias blocks using the internal codec
// (which knows the hash masks).
func makeCoreAliases(t *testing.T, n int) [][]byte {
	t.Helper()
	cfg := core.NewConfig4()
	codec := core.NewCodec(cfg)
	rng := rand.New(rand.NewSource(0xA11A5))
	var out [][]byte
	for len(out) < n {
		b := make([]byte, cop.BlockBytes)
		// Three segments that are valid code words post-hash: encode
		// data into code words, then XOR the segment hash back out by
		// encoding through the codec itself: Encode a compressible
		// block and steal its segments (they are hash-masked valid code
		// words by construction).
		donor := make([]byte, cop.BlockBytes)
		base := rng.Uint64() &^ 0xFFFFFF
		for i := 0; i < 8; i++ {
			binary.BigEndian.PutUint64(donor[8*i:], base|uint64(rng.Intn(1<<20)))
		}
		img, status := codec.Encode(donor)
		if status != core.StoredCompressed {
			continue
		}
		copy(b, img[:48]) // segments 0..2: valid code words after hashing
		rng.Read(b[48:])  // segment 3: random
		if codec.Classify(b) != core.RejectedAlias {
			continue // tail aliased as a 4th CW, or block compressible
		}
		out = append(out, b)
	}
	return out
}

func TestSoakAllModesWithFaults(t *testing.T) {
	// Interleave writes, reads, flushes, and fault injection across a
	// realistic working set; verify protected modes never corrupt data
	// silently when each injected fault is a correctable single flip.
	p := workload.MustGet("omnetpp")
	for _, mode := range []memctrl.Mode{memctrl.COP, memctrl.COPER, memctrl.ECCRegion, memctrl.ECCDIMM} {
		ctrl := memctrl.New(memctrl.Config{Mode: mode, LLCBytes: 32 * 1024, LLCWays: 8})
		rng := rand.New(rand.NewSource(77))
		ref := map[uint64][]byte{}
		version := map[uint64]uint32{}
		for step := 0; step < 3000; step++ {
			addr := uint64(rng.Intn(600)) * cop.BlockBytes
			switch rng.Intn(10) {
			case 0, 1, 2, 3: // write
				version[addr]++
				data := p.Block(addr, version[addr])
				ref[addr] = data
				if err := ctrl.Write(addr, data); err != nil {
					t.Fatalf("%v: write: %v", mode, err)
				}
			case 4: // flush everything
				if err := ctrl.Flush(); err != nil {
					t.Fatalf("%v: flush: %v", mode, err)
				}
			case 5: // inject a single-bit fault if resident
				if ctrl.InDRAM(addr) && !ctrl.LLC().Contains(addr) {
					bit := rng.Intn(512)
					ctrl.InjectBitFlip(addr, bit)
					// Read it back immediately so faults never stack.
					want, ok := ref[addr]
					got, err := ctrl.Read(addr)
					if err != nil {
						t.Fatalf("%v: faulted read: %v", mode, err)
					}
					if ok && mode != memctrl.COP && !bytes.Equal(got, want) {
						t.Fatalf("%v: silent corruption at %#x", mode, addr)
					}
					if ok && mode == memctrl.COP && !bytes.Equal(got, want) {
						// COP leaves raw blocks exposed: documented.
						ref[addr] = got
					} else {
						// Correction happens on the read path, not in
						// DRAM (no scrubbing): revert the latent flip so
						// later injections stay single-bit.
						ctrl.InjectBitFlip(addr, bit)
					}
				}
			default: // read
				want, ok := ref[addr]
				got, err := ctrl.Read(addr)
				if err != nil {
					t.Fatalf("%v: read: %v", mode, err)
				}
				if ok && !bytes.Equal(got, want) {
					t.Fatalf("%v: data mismatch at %#x", mode, addr)
				}
			}
		}
	}
}

func TestDecodeSafetyFuzz(t *testing.T) {
	// Arbitrary DRAM images must never panic any decoder, and must
	// always return either an error or a 64-byte block.
	codec4 := cop.NewCodec(cop.Config4())
	codec8 := cop.NewCodec(cop.Config8())
	er := cop.NewERCodec(cop.Config4())
	ck := cop.NewChipkillCodec()
	ac := cop.NewAdaptiveCodec()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		img := make([]byte, cop.BlockBytes)
		rng.Read(img)
		if b, _, err := codec4.Decode(img); err == nil && len(b) != cop.BlockBytes {
			return false
		}
		if b, _, err := codec8.Decode(img); err == nil && len(b) != cop.BlockBytes {
			return false
		}
		if b, _, err := er.Read(img); err == nil && len(b) != cop.BlockBytes {
			return false
		}
		if b, _, err := ck.Decode(img); err == nil && len(b) != cop.BlockBytes {
			return false
		}
		if b, _, _, err := ac.Decode(img); err == nil && len(b) != cop.BlockBytes {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestCOPERRegionLifecycle(t *testing.T) {
	// Blocks oscillating between compressible and incompressible must
	// allocate, reuse, and free region entries without leaks.
	ctrl := memctrl.New(memctrl.Config{Mode: memctrl.COPER, LLCBytes: 16 * 1024, LLCWays: 4})
	rng := rand.New(rand.NewSource(5))
	const n = 64
	random := func() []byte {
		b := make([]byte, cop.BlockBytes)
		rng.Read(b)
		return b
	}
	compressible := func(i int) []byte {
		b := make([]byte, cop.BlockBytes)
		binary.BigEndian.PutUint64(b, uint64(i))
		return b
	}
	// Phase 1: all incompressible.
	for i := 0; i < n; i++ {
		if err := ctrl.Write(uint64(i)*cop.BlockBytes, random()); err != nil {
			t.Fatal(err)
		}
	}
	if err := ctrl.Flush(); err != nil {
		t.Fatal(err)
	}
	allocated := ctrl.ER().Region().Stats().Allocated
	if allocated == 0 {
		t.Fatal("phase 1: no entries allocated")
	}
	// Phase 2: read (capturing pointers), rewrite compressible, flush:
	// entries must be freed.
	for i := 0; i < n; i++ {
		addr := uint64(i) * cop.BlockBytes
		if _, err := ctrl.Read(addr); err != nil {
			t.Fatal(err)
		}
		if err := ctrl.Write(addr, compressible(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := ctrl.Flush(); err != nil {
		t.Fatal(err)
	}
	after := ctrl.ER().Region().Stats().Allocated
	if after >= allocated {
		t.Fatalf("entries not freed: %d -> %d", allocated, after)
	}
	// All data still correct.
	for i := 0; i < n; i++ {
		got, err := ctrl.Read(uint64(i) * cop.BlockBytes)
		if err != nil || !bytes.Equal(got, compressible(i)) {
			t.Fatalf("block %d: %v", i, err)
		}
	}
}

func TestExperimentDeterminism(t *testing.T) {
	opts := cop.ExperimentOptions{Samples: 800, AliasSamples: 1000, Epochs: 100}
	a, err := cop.RunExperiment("fig9", opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := cop.RunExperiment("fig9", opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Format() != b.Format() {
		t.Fatal("experiment output is not deterministic")
	}
}
