// Package cop is a from-scratch reproduction of "COP: To Compress and
// Protect Main Memory" (Palframan, Kim, Lipasti — ISCA 2015).
//
// COP protects commodity non-ECC DIMMs from soft errors by compressing
// each 64-byte block just enough to fit SECDED check bits inline — so
// protection costs no extra DRAM storage and no extra memory accesses —
// and, uniquely, distinguishes compressed (protected) blocks from raw
// (incompressible) ones with no tracking metadata at all: the decoder
// simply counts valid ECC code words. COP-ER extends protection to
// incompressible blocks through a compact, dynamically grown ECC region.
//
// The package offers three levels of API:
//
//   - Codec / ERCodec: the block encoder/decoder pair (the paper's
//     contribution) for callers who manage storage themselves.
//   - Memory: a functional protected-memory model (LLC + DRAM images +
//     fault injection) for end-to-end experiments.
//   - RunExperiment: regenerates any table or figure from the paper's
//     evaluation.
//
// All implementation lives under internal/; see DESIGN.md for the system
// inventory and EXPERIMENTS.md for paper-vs-measured results.
package cop

import (
	"fmt"
	"io"
	"net/http"

	"cop/internal/chipkill"
	"cop/internal/cli"
	"cop/internal/core"
	"cop/internal/experiments"
	"cop/internal/faultsim"
	"cop/internal/memctrl"
	"cop/internal/migrate"
	"cop/internal/reliability"
	"cop/internal/shard"
	"cop/internal/telemetry"
	"cop/internal/trace"
	"cop/internal/workload"
)

// Core codec types, re-exported from internal/core.
type (
	// Codec encodes 64-byte blocks into self-describing DRAM images and
	// decodes/corrects them (plain COP: incompressible blocks stay raw).
	Codec = core.Codec
	// ERCodec is the COP-ER variant that also protects incompressible
	// blocks via an ECC region.
	ERCodec = core.ERCodec
	// Config selects the code geometry, detection threshold, and
	// compression scheme.
	Config = core.Config
	// StoreStatus reports how a block was (or could not be) stored.
	StoreStatus = core.StoreStatus
	// DecodeInfo describes what the decoder observed for one block.
	DecodeInfo = core.DecodeInfo
)

// BlockBytes is the DRAM block granularity COP operates on.
const BlockBytes = core.BlockBytes

// Store statuses (see StoreStatus).
const (
	// StoredCompressed: compressed with inline ECC — protected.
	StoredCompressed = core.StoredCompressed
	// StoredRaw: incompressible, stored unprotected.
	StoredRaw = core.StoredRaw
	// RejectedAlias: incompressible alias; must remain in the LLC.
	RejectedAlias = core.RejectedAlias
)

// NoPointer marks the absence of an ECC-region entry in ERCodec calls.
const NoPointer = core.NoPointer

// Config4 returns the paper's preferred operating point: free 4 bytes,
// four (128,120) SECDED code words, 3-of-4 detection threshold, combined
// TXT+MSB+RLE compression.
func Config4() Config { return core.NewConfig4() }

// Config8 returns the 8-byte operating point: eight (64,56) code words,
// 5-of-8 threshold, MSB+RLE compression.
func Config8() Config { return core.NewConfig8() }

// NewCodec builds a COP codec. Use Config4() unless you need the stronger
// multi-error behaviour (and lower coverage) of Config8().
func NewCodec(cfg Config) *Codec { return core.NewCodec(cfg) }

// NewERCodec builds a COP-ER codec with a fresh ECC region.
func NewERCodec(cfg Config) *ERCodec { return core.NewERCodec(cfg) }

// Memory is a functional protected-memory hierarchy (LLC in front of
// encoded DRAM images) with fault-injection hooks.
type Memory = memctrl.Controller

// MemoryConfig parameterizes NewMemory.
type MemoryConfig = memctrl.Config

// MemoryMode selects a protection scheme (see the Mode* constants).
type MemoryMode = memctrl.Mode

// Protection modes for NewMemory.
const (
	ModeUnprotected = memctrl.Unprotected
	ModeCOP         = memctrl.COP
	ModeCOPER       = memctrl.COPER
	ModeECCRegion   = memctrl.ECCRegion
	ModeECCDIMM     = memctrl.ECCDIMM
	ModeCOPAdaptive = memctrl.COPAdaptive
	ModeCOPChipkill = memctrl.COPChipkill
)

// NewMemory builds a protected-memory model. The zero MemoryConfig (beyond
// Mode) gives the paper's 4 MB / 16-way LLC and the Config4 codec.
// Memory is not safe for concurrent use; wrap it in NewShardedMemory when
// multiple goroutines drive one memory image.
func NewMemory(cfg MemoryConfig) *Memory { return memctrl.New(cfg) }

// ReadInfo describes what the controller observed serving one block read
// (cache hit vs DRAM decode, code-word verdicts, corrections).
type ReadInfo = memctrl.ReadInfo

// Store is the common protected-memory surface every front-end exposes:
// whole-block reads and writes at 64-byte granularity, a dirty-line flush,
// and the unified telemetry snapshot. Memory, ShardedMemory, and
// BatchedMemory all implement it, as does copnet's network client — so
// servers, load generators, campaigns, and tests can be written once
// against Store and handed any front-end (local or remote).
//
// Concurrency is a property of the implementation, not the interface:
// Memory is single-goroutine, ShardedMemory and BatchedMemory are safe for
// concurrent use. Open documents which implementation a given option set
// yields.
type Store interface {
	// Read loads the 64-byte block containing addr.
	Read(addr uint64) ([]byte, error)
	// ReadInto reads the block holding addr into dst (at least BlockBytes)
	// and reports the decoder's observations.
	ReadInto(dst []byte, addr uint64) (ReadInfo, error)
	// Write stores a full 64-byte block at addr.
	Write(addr uint64, data []byte) error
	// Flush writes every dirty cached line back to DRAM.
	Flush() error
	// Snapshot returns the coherent telemetry tree for the hierarchy.
	Snapshot() telemetry.Snapshot
}

// Every front-end implements Store (compile-time enforced).
var (
	_ Store = (*Memory)(nil)
	_ Store = (*ShardedMemory)(nil)
	_ Store = (*BatchedMemory)(nil)
)

// Telemetry, re-exported from internal/telemetry: both Memory and
// ShardedMemory produce the same Snapshot tree (Snapshot method), so all
// counter consumption — JSON, Prometheus text, expvar, campaign results —
// goes through exactly one API. The legacy Stats surfaces remain as
// deprecated thin wrappers over these snapshots.
type (
	// Snapshot is the coherent telemetry tree for one memory hierarchy:
	// controller, cache, optional region and DRAM sections, plus derived
	// rates. A ShardedMemory's Snapshot merges its per-shard trees such
	// that a sharded and an unsharded run of the same single-threaded
	// trace produce byte-identical JSON.
	Snapshot = telemetry.Snapshot
	// TelemetryEvent is one hierarchy event delivered to hook
	// subscribers (Memory.Subscribe).
	TelemetryEvent = telemetry.Event
	// TelemetrySource is anything that produces a Snapshot; Memory,
	// ShardedMemory, and TelemetryRegistry all satisfy it.
	TelemetrySource = telemetry.Source
	// TelemetryRegistry is a swappable TelemetrySource holder for
	// long-running servers (see TelemetryHandler).
	TelemetryRegistry = telemetry.Registry
)

// TelemetryHandler serves /metrics (Prometheus text), /snapshot (JSON),
// /debug/vars (expvar), and /debug/pprof for src.
func TelemetryHandler(src TelemetrySource) http.Handler { return telemetry.Handler(src) }

// Execution tracing, re-exported from internal/trace: a per-shard
// flight recorder of fixed-size binary records covering the full access
// lifecycle (shard route → cache → codec → DRAM commands → ECC region).
// Distinct from workload traces (coptrace): a workload trace is an
// address/content *input* to the model; an execution trace is a record of
// what the model *did*.
type (
	// Tracer owns the ring buffers. Attach one to a Memory or
	// ShardedMemory via MemoryConfig.Tracer, call Start, and drain with
	// Snapshot / ExportChromeJSON, or let an anomaly freeze the rings and
	// cut a black-box TraceDump.
	Tracer = trace.Tracer
	// TraceConfig sizes the rings and selects the anomaly triggers.
	TraceConfig = trace.Config
	// TraceRecord is one fixed-size (64-byte) execution-trace record.
	TraceRecord = trace.Record
	// TraceDump is a frozen black-box excerpt: the trigger record plus
	// the last records of every ring.
	TraceDump = trace.Dump
)

// NewTracer builds an execution-trace flight recorder (disabled until
// Start; a disabled tracer costs one atomic load per potential record).
func NewTracer(cfg TraceConfig) *Tracer { return trace.New(cfg) }

// ExportChromeTrace writes records as Chrome trace-event JSON that
// Perfetto and chrome://tracing load directly: one track per shard and
// layer in logical-tick time, one track per DRAM bank in bus-cycle time,
// flow arrows tying each access across layers.
func ExportChromeTrace(w io.Writer, recs []TraceRecord) error {
	return trace.ExportChromeJSON(w, recs)
}

// TelemetryHandlerWithTrace is TelemetryHandler plus the /trace/start,
// /trace/stop, /trace.json, and /trace.bin flight-recorder endpoints.
func TelemetryHandlerWithTrace(src TelemetrySource, tr *Tracer) http.Handler {
	return telemetry.HandlerWithTracer(src, tr)
}

// ShardedMemory is a concurrency-safe protected-memory model: block
// addresses are striped across independent per-shard controllers (one lock
// each), with set-index-compatible striping so single-threaded behavior is
// identical to an unsharded Memory of the same total configuration.
type ShardedMemory = shard.Controller

// ShardedMemoryConfig parameterizes NewShardedMemory. It embeds a full
// MemoryConfig as Mem — there is one config vocabulary for both memory
// front-ends — plus the shard count. The LLC rule is documented once, on
// shard.Config: Mem.LLCBytes is the TOTAL capacity, each shard gets
// LLCBytes/Shards, and an explicit Shards must be a power of two no larger
// than the LLC set count (zero means auto). Invalid combinations are
// errors (NewShardedMemoryChecked), never silently rounded.
type ShardedMemoryConfig = shard.Config

// NewShardedMemory builds a sharded, concurrency-safe memory model. It
// panics on an invalid config; use NewShardedMemoryChecked to get the
// error instead.
func NewShardedMemory(cfg ShardedMemoryConfig) *ShardedMemory { return shard.New(cfg) }

// NewShardedMemoryChecked builds a sharded memory model, reporting invalid
// configs (non-power-of-two shard count, shards exceeding LLC sets,
// non-power-of-two set geometry) as errors.
//
// Deprecated: use Open(WithMemoryConfig(cfg.Mem), WithShards(cfg.Shards));
// Open is the one constructor that covers every front-end behind the Store
// interface. This wrapper remains for callers that need the concrete type.
func NewShardedMemoryChecked(cfg ShardedMemoryConfig) (*ShardedMemory, error) {
	return shard.NewChecked(cfg)
}

// BatchedMemory is the batched, concurrency-safe protected-memory model:
// the same striping, telemetry, and memory image as ShardedMemory, but
// requests flow through per-shard MPSC rings to per-shard workers that
// execute them in batches — one lock acquisition amortized over a window
// of accesses, with FR-FCFS-friendly reordering inside each batch. Its
// synchronous methods mirror ShardedMemory's; NewGroup exposes the
// asynchronous window API, and SetMode/Drain expose the per-shard
// Enabled/Paused/Draining state machine (Draining quiesces a shard to a
// fenced, flushed state). Release the workers with Close when done.
type BatchedMemory = shard.Batched

// BatchedMemoryConfig parameterizes NewBatchedMemory: the embedded
// ShardedMemoryConfig plus the per-shard ring capacity and the batch cap.
type BatchedMemoryConfig = shard.BatchedConfig

// BatchGroup tracks a window of asynchronous batched operations; see
// BatchedMemory.NewGroup.
type BatchGroup = shard.Group

// BatchMode is a batched shard's controller state.
type BatchMode = shard.Mode

// Batched shard modes.
const (
	BatchEnabled  = shard.ModeEnabled
	BatchPaused   = shard.ModePaused
	BatchDraining = shard.ModeDraining
)

// NewBatchedMemory builds a batched memory model. It panics on an invalid
// config; use NewBatchedMemoryChecked to get the error instead.
func NewBatchedMemory(cfg BatchedMemoryConfig) *BatchedMemory { return shard.NewBatched(cfg) }

// NewBatchedMemoryChecked builds a batched memory model, reporting invalid
// configs (bad shard geometry, non-power-of-two ring size) as errors.
//
// Deprecated: use Open(WithMemoryConfig(cfg.Shard.Mem),
// WithShards(cfg.Shard.Shards), WithBatching(cfg.RingSize, cfg.BatchMax));
// Open is the one constructor that covers every front-end behind the Store
// interface. This wrapper remains for callers that need the concrete type.
func NewBatchedMemoryChecked(cfg BatchedMemoryConfig) (*BatchedMemory, error) {
	return shard.NewBatchedChecked(cfg)
}

// --- unified constructor -------------------------------------------------

// openConfig accumulates Open's functional options.
type openConfig struct {
	mem        MemoryConfig
	scheme     string
	shards     int
	sharded    bool
	batched    bool
	ring       int
	batchMax   int
	registry   *TelemetryRegistry
	requireCon bool
}

// Option configures Open.
type Option func(*openConfig)

// WithScheme selects the protection scheme by its canonical command-line
// name (SchemeNames lists them: unprotected, ecc-dimm, cop, cop-er,
// cop-adaptive, cop-chipkill, ecc-region). Unknown names fail Open.
func WithScheme(name string) Option { return func(c *openConfig) { c.scheme = name } }

// WithMode selects the protection scheme by mode constant (the
// programmatic twin of WithScheme).
func WithMode(m MemoryMode) Option {
	return func(c *openConfig) { c.mem.Mode = m; c.scheme = "" }
}

// WithMemoryConfig replaces the full per-controller memory configuration
// (codec geometry, LLC, DRAM model, tracer). Options applied after it
// override the fields they cover.
func WithMemoryConfig(cfg MemoryConfig) Option {
	return func(c *openConfig) { c.mem = cfg; c.scheme = "" }
}

// WithLLC sizes the last-level cache. For sharded and batched front-ends
// bytes is the TOTAL capacity across shards (the shard.Config rule).
func WithLLC(bytes, ways int) Option {
	return func(c *openConfig) { c.mem.LLCBytes = bytes; c.mem.LLCWays = ways }
}

// WithShards selects the concurrency-safe sharded front-end with n stripes
// (0 = auto: smallest power of two >= GOMAXPROCS, clamped to the LLC set
// count). Without WithBatching the result is a *ShardedMemory.
func WithShards(n int) Option {
	return func(c *openConfig) { c.shards = n; c.sharded = true }
}

// WithBatching selects the batched front-end (*BatchedMemory): per-shard
// request rings of ringSize entries (0 = 256) and worker batches of up to
// batchMax transactions (0 = 64). Implies a sharded topology; combine with
// WithShards to fix the stripe count. The returned Store must be Closed
// (it owns worker goroutines) — Open's documentation, not the interface,
// carries that obligation, so callers keeping the concrete type should
// assert to *BatchedMemory.
func WithBatching(ringSize, batchMax int) Option {
	return func(c *openConfig) { c.batched = true; c.ring = ringSize; c.batchMax = batchMax }
}

// WithConcurrent requires a concurrency-safe Store: Open fails rather than
// return a single-goroutine *Memory. Servers accepting arbitrary option
// sets use it as a guard.
func WithConcurrent() Option { return func(c *openConfig) { c.requireCon = true } }

// WithTracer attaches an execution-trace flight recorder to the opened
// memory.
func WithTracer(t *Tracer) Option { return func(c *openConfig) { c.mem.Tracer = t } }

// WithTelemetryRegistry points reg at the opened memory, so a telemetry
// server started before Open (TelemetryHandler on a Registry) begins
// serving the new store's counters the moment it exists.
func WithTelemetryRegistry(reg *TelemetryRegistry) Option {
	return func(c *openConfig) { c.registry = reg }
}

// Open is the unified front-end constructor: one call, functional options,
// a Store out. The option set picks the implementation —
//
//   - no topology options: a *Memory (single-goroutine functional model);
//   - WithShards: a *ShardedMemory (mutex per shard, concurrency-safe);
//   - WithBatching: a *BatchedMemory (per-shard request rings and batch
//     workers; Close it when done).
//
// Invalid combinations (unknown scheme name, bad shard geometry,
// non-power-of-two ring size) are reported as errors, never panics. The
// deprecated NewShardedMemoryChecked / NewBatchedMemoryChecked remain as
// thin wrappers for callers that need the concrete types without a type
// assertion.
func Open(opts ...Option) (Store, error) {
	var c openConfig
	for _, opt := range opts {
		opt(&c)
	}
	if c.scheme != "" {
		schemes, err := cli.ParseSchemes(c.scheme)
		if err != nil || len(schemes) != 1 {
			return nil, fmt.Errorf("cop: scheme %q: want exactly one of %s", c.scheme, cli.SchemeNames())
		}
		c.mem.Mode = schemes[0].Mode
	}
	var (
		st  Store
		err error
	)
	switch {
	case c.batched:
		st, err = shard.NewBatchedChecked(shard.BatchedConfig{
			Shard:    shard.Config{Mem: c.mem, Shards: c.shards},
			RingSize: c.ring,
			BatchMax: c.batchMax,
		})
	case c.sharded:
		st, err = shard.NewChecked(shard.Config{Mem: c.mem, Shards: c.shards})
	default:
		if c.requireCon {
			return nil, fmt.Errorf("cop: WithConcurrent requires WithShards or WithBatching (a plain Memory is single-goroutine)")
		}
		st = memctrl.New(c.mem)
	}
	if err != nil {
		return nil, err
	}
	if c.registry != nil {
		c.registry.Set(st)
	}
	return st, nil
}

// SchemeNames returns the canonical command-line scheme names WithScheme
// accepts, comma-joined.
func SchemeNames() string { return cli.SchemeNames() }

// Online reconfiguration, re-exported from internal/migrate.
type (
	// MigrationScheme is a named protection-scheme target a live
	// migration can convert a BatchedMemory to ("cop-4", "cop-8",
	// "cop-adaptive", "ecc-region", "ecc-dimm", "unprotected").
	MigrationScheme = migrate.Scheme
	// MigrateOptions bounds a live migration's per-pause work.
	MigrateOptions = migrate.Options
	// Scrubber is the background patrol scrubber over a BatchedMemory;
	// see NewScrubber.
	Scrubber = migrate.Scrubber
	// ScrubOptions parameterizes NewScrubber.
	ScrubOptions = migrate.ScrubOptions
)

// Migrate converts a live BatchedMemory to the named protection scheme
// without stopping traffic: shards are drained one at a time just long
// enough to switch their machinery, then resident blocks are re-encoded
// in bounded chunks while reads and writes keep flowing (blocks not yet
// converted stay readable through the retiring scheme's decoder). See
// MigrationSchemes for the registry.
func Migrate(m *BatchedMemory, scheme string, opts MigrateOptions) error {
	return migrate.MigrateTo(m, scheme, opts)
}

// MigrationSchemes lists the registered live-migration targets.
func MigrationSchemes() []string { return migrate.Names() }

// Reshard grows or shrinks a BatchedMemory's stripe count online: each
// stripe family is quiesced, its resident blocks are copied to the new
// shards, and routing cuts over atomically — stripes outside the family
// keep serving throughout.
func Reshard(m *BatchedMemory, shards int) error { return m.Reshard(shards) }

// NewScrubber builds a background patrol scrubber over m (call Start to
// launch it and Stop to halt it). Scrub corrections are counted apart
// from demand-read corrections in telemetry, and uncorrectable blocks
// found by patrol trip the flight recorder's anomaly dump.
func NewScrubber(m *BatchedMemory, opts ScrubOptions) *Scrubber {
	return migrate.NewScrubber(m, opts)
}

// Workload modeling, re-exported from internal/workload.
type (
	// WorkloadProfile models one application: a block-content mixture
	// plus an access model (footprint, MPKI, locality, perfect-L3 IPC).
	WorkloadProfile = workload.Profile
	// ContentMix weights the block-content categories of a profile.
	ContentMix = workload.ContentMix
)

// Workloads returns every registered workload profile, name-sorted
// (the paper's benchmarks plus any custom registrations).
func Workloads() []*WorkloadProfile { return workload.All() }

// Workload returns one profile by name.
func Workload(name string) (*WorkloadProfile, error) { return workload.Get(name) }

// RegisterWorkload adds a custom application model usable with traces,
// experiments helpers, and the simulator.
func RegisterWorkload(p WorkloadProfile) (*WorkloadProfile, error) {
	return workload.RegisterCustom(p)
}

// Extensions beyond the paper's main proposal.

// AdaptiveCodec stores each block in the strongest format it fits (§3.1's
// "stronger codes for more compressible blocks" option): eight (64,56)
// words when the block frees 8 bytes, four (128,120) words when it only
// frees 4, raw otherwise — still with zero tracking metadata.
type AdaptiveCodec = core.AdaptiveCodec

// NewAdaptiveCodec builds the two-tier codec.
func NewAdaptiveCodec() *AdaptiveCodec { return core.NewAdaptiveCodec() }

// ChipkillCodec is the paper's future-work extension: compression-funded
// chip-failure tolerance (per-beat chip parity + CRC validation), able to
// reconstruct a whole dead ×8 chip in any compressible block.
type ChipkillCodec = chipkill.Codec

// NewChipkillCodec builds a COP-CK codec.
func NewChipkillCodec() *ChipkillCodec { return chipkill.New() }

// ChipkillERCodec extends COP-CK to incompressible blocks: dual
// SEC-protected region pointers (one per chip half) locate entries holding
// the displaced bits, the chip parity, and a CRC — so *every* block
// survives a whole-chip failure.
type ChipkillERCodec = chipkill.ERCodec

// NewChipkillERCodec builds a COP-CK-ER codec with a fresh region.
func NewChipkillERCodec() *ChipkillERCodec { return chipkill.NewER() }

// FailChip simulates a whole-chip failure on a DRAM image (see
// internal/chipkill).
func FailChip(image []byte, chip int, pattern byte) { chipkill.FailChip(image, chip, pattern) }

// Fault-injection campaigns, re-exported from internal/faultsim.
type (
	// FaultCampaignConfig parameterizes FaultCampaign. The zero value
	// (beyond Mode) runs 5000 injections over a 2048-block "gcc" footprint
	// on one worker.
	FaultCampaignConfig = faultsim.Config
	// FaultCampaignResult is a completed campaign: the per-failure-mode
	// outcome table plus the differential-oracle verdict.
	FaultCampaignResult = faultsim.Result
	// FaultOutcome classifies one read of a fault-affected block.
	FaultOutcome = faultsim.Outcome
	// FailureMode is a DRAM field failure mode (Sridharan & Liberty
	// rates; see internal/reliability).
	FailureMode = reliability.FailureMode
)

// Fault-read outcomes (see FaultOutcome).
const (
	FaultCorrected  = faultsim.Corrected
	FaultMasked     = faultsim.Masked
	FaultSilent     = faultsim.Silent
	FaultFalseAlias = faultsim.FalseAlias
	FaultDetected   = faultsim.Detected
)

// FaultCampaign runs a seeded, deterministic fault-injection campaign:
// faults are injected into live DRAM images per the field failure modes,
// read back through the real controller, and every outcome is verified
// against a golden shadow copy (same seed, same table — byte for byte).
func FaultCampaign(cfg FaultCampaignConfig) (*FaultCampaignResult, error) {
	return faultsim.Run(cfg)
}

// FaultCampaignModes returns the five single-structure field failure
// modes a default campaign injects.
func FaultCampaignModes() []FailureMode { return faultsim.DefaultModes() }

// Experiment types, re-exported from internal/experiments.
type (
	// ExperimentReport is a regenerated paper table/figure.
	ExperimentReport = experiments.Report
	// ExperimentOptions trades fidelity for runtime (zero value: full).
	ExperimentOptions = experiments.Options
)

// Experiments lists the available experiment ids: every figure and table
// from the paper (fig1, fig4, fig8, fig9, fig10, fig11, fig12, table3,
// alias, dimmcmp, config, benchmarks) plus the beyond-the-paper studies
// (fig10mc, ablations, fieldmodes, relatedwork, sensitivity, energy,
// census, chipfail).
func Experiments() []string { return experiments.IDs() }

// RunExperiment regenerates one paper table or figure.
func RunExperiment(id string, opts ExperimentOptions) (*ExperimentReport, error) {
	return experiments.Run(id, opts)
}
