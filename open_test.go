package cop_test

// Tests for the unified cop.Open constructor and the cop.Store surface it
// returns: each topology option yields the right concrete front-end, all
// of them satisfy Store identically, and invalid option sets report
// errors instead of panicking.

import (
	"bytes"
	"strings"
	"testing"

	"cop"
)

// storeRoundTrip drives the Store surface shared by every front-end.
func storeRoundTrip(t *testing.T, st cop.Store) {
	t.Helper()
	data := make([]byte, cop.BlockBytes)
	for i := range data {
		data[i] = byte(i * 7)
	}
	if err := st.Write(64, data); err != nil {
		t.Fatal(err)
	}
	got, err := st.Read(64)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("round-trip mangled")
	}
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, cop.BlockBytes)
	info, err := st.ReadInto(dst, 64)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst, data) {
		t.Fatal("ReadInto mangled")
	}
	if info.LLCHit {
		t.Error("post-flush ReadInto claims an LLC hit")
	}
	if snap := st.Snapshot(); snap.Controller.Stores == 0 {
		t.Error("snapshot records no stores")
	}
}

func TestOpenDefaultIsMemory(t *testing.T) {
	st, err := cop.Open(cop.WithScheme("cop-er"), cop.WithLLC(64*1024, 8))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := st.(*cop.Memory); !ok {
		t.Fatalf("got %T, want *cop.Memory", st)
	}
	storeRoundTrip(t, st)
}

func TestOpenSharded(t *testing.T) {
	st, err := cop.Open(cop.WithScheme("cop"), cop.WithShards(4), cop.WithLLC(64*1024, 8))
	if err != nil {
		t.Fatal(err)
	}
	sm, ok := st.(*cop.ShardedMemory)
	if !ok {
		t.Fatalf("got %T, want *cop.ShardedMemory", st)
	}
	if sm.NumShards() != 4 {
		t.Fatalf("shards = %d, want 4", sm.NumShards())
	}
	storeRoundTrip(t, st)
}

func TestOpenBatched(t *testing.T) {
	st, err := cop.Open(
		cop.WithMode(cop.ModeCOPER),
		cop.WithShards(2),
		cop.WithBatching(128, 32),
		cop.WithConcurrent(),
		cop.WithLLC(64*1024, 8),
	)
	if err != nil {
		t.Fatal(err)
	}
	bm, ok := st.(*cop.BatchedMemory)
	if !ok {
		t.Fatalf("got %T, want *cop.BatchedMemory", st)
	}
	defer bm.Close()
	storeRoundTrip(t, st)
}

func TestOpenTelemetryRegistry(t *testing.T) {
	reg := new(cop.TelemetryRegistry)
	st, err := cop.Open(cop.WithScheme("ecc-dimm"), cop.WithTelemetryRegistry(reg))
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Write(0, make([]byte, cop.BlockBytes)); err != nil {
		t.Fatal(err)
	}
	if snap := reg.Snapshot(); snap.Controller.Stores == 0 {
		t.Error("registry not pointed at the opened store")
	}
}

func TestOpenErrors(t *testing.T) {
	if _, err := cop.Open(cop.WithScheme("no-such-scheme")); err == nil {
		t.Error("unknown scheme accepted")
	}
	if _, err := cop.Open(cop.WithScheme("cop,cop-er")); err == nil {
		t.Error("multi-scheme list accepted")
	}
	if _, err := cop.Open(cop.WithScheme("all")); err == nil {
		t.Error("'all' accepted as a scheme")
	}
	// WithConcurrent guards against a single-goroutine Memory.
	if _, err := cop.Open(cop.WithScheme("cop"), cop.WithConcurrent()); err == nil {
		t.Error("WithConcurrent satisfied by a plain Memory")
	}
	// Bad shard geometry errors instead of panicking.
	if _, err := cop.Open(cop.WithShards(3)); err == nil {
		t.Error("non-power-of-two shard count accepted")
	}
}

func TestSchemeNames(t *testing.T) {
	names := cop.SchemeNames()
	for _, want := range []string{"unprotected", "ecc-dimm", "cop", "cop-er"} {
		if !strings.Contains(names, want) {
			t.Errorf("SchemeNames() missing %q: %s", want, names)
		}
	}
}

// TestDeprecatedConstructors keeps the pre-Open constructors working: the
// deprecation is doc-level, not behavioral.
func TestDeprecatedConstructors(t *testing.T) {
	sm, err := cop.NewShardedMemoryChecked(cop.ShardedMemoryConfig{
		Mem: cop.MemoryConfig{Mode: cop.ModeCOP, LLCBytes: 64 * 1024, LLCWays: 8}, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	storeRoundTrip(t, sm)

	bm, err := cop.NewBatchedMemoryChecked(cop.BatchedMemoryConfig{
		Shard: cop.ShardedMemoryConfig{Mem: cop.MemoryConfig{Mode: cop.ModeCOP, LLCBytes: 64 * 1024, LLCWays: 8}, Shards: 2}})
	if err != nil {
		t.Fatal(err)
	}
	defer bm.Close()
	storeRoundTrip(t, bm)
}
