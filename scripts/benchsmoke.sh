#!/usr/bin/env bash
# benchsmoke.sh — fail on a >5% throughput regression in the sharded
# memory hot path (BenchmarkShardedThroughput, telemetry always on).
#
# Primary comparison is self-calibrating: the same benchmark is built and
# run from the merge-base commit in a temporary git worktree on the SAME
# machine, so CI-runner speed differences cancel out ("before/after").
# When no merge-base is available (shallow clone, first commit), the
# committed reference number in scripts/benchsmoke.baseline is used
# instead; that number was measured on the reference dev container, so
# BENCHSMOKE_TOLERANCE_PCT can be raised for slower machines.
#
# Environment knobs:
#   BENCHSMOKE_TOLERANCE_PCT  allowed regression percentage (default 5)
#   BENCHSMOKE_COUNT          bench repetitions, best-of (default 5)
#   BENCHSMOKE_BENCHTIME      go test -benchtime (default 1s)
set -euo pipefail

BENCH='BenchmarkShardedThroughput/sharded-8g'
TOL="${BENCHSMOKE_TOLERANCE_PCT:-5}"
COUNT="${BENCHSMOKE_COUNT:-5}"
BENCHTIME="${BENCHSMOKE_BENCHTIME:-1s}"
REPO="$(cd "$(dirname "$0")/.." && pwd)"

# run_bench DIR — print the best (minimum) ns/op over COUNT runs.
run_bench() {
    (cd "$1" && go test -run '^$' -bench "$BENCH" -benchtime "$BENCHTIME" -count "$COUNT" .) |
        awk '$1 ~ /sharded-8g/ { print $3 }' | sort -n | head -n1
}

after="$(run_bench "$REPO")"
if [ -z "$after" ]; then
    echo "benchsmoke: no benchmark output for $BENCH" >&2
    exit 1
fi
echo "benchsmoke: HEAD        $after ns/op (best of $COUNT)"

before=""
base_desc=""
base="$(git -C "$REPO" merge-base HEAD origin/main 2>/dev/null || git -C "$REPO" rev-parse HEAD~1 2>/dev/null || true)"
if [ -n "$base" ] && [ "$base" != "$(git -C "$REPO" rev-parse HEAD)" ]; then
    wt="$(mktemp -d)"
    trap 'git -C "$REPO" worktree remove --force "$wt" >/dev/null 2>&1 || rm -rf "$wt"' EXIT
    if git -C "$REPO" worktree add --detach "$wt" "$base" >/dev/null 2>&1; then
        # The benchmark predates the telemetry layer in old enough bases;
        # a base that cannot run it simply falls through to the baseline.
        before="$(run_bench "$wt" 2>/dev/null || true)"
        base_desc="merge-base $(git -C "$REPO" rev-parse --short "$base")"
    fi
fi

if [ -z "$before" ]; then
    before="$(grep -v '^#' "$REPO/scripts/benchsmoke.baseline" | head -n1 | tr -d '[:space:]')"
    base_desc="committed baseline"
fi
echo "benchsmoke: $base_desc  $before ns/op"

# Fail when HEAD is more than TOL percent slower than the reference.
limit=$(( before + before * TOL / 100 ))
if [ "${after%.*}" -gt "$limit" ]; then
    echo "benchsmoke: FAIL — $after ns/op exceeds $base_desc $before ns/op by more than ${TOL}% (limit $limit)" >&2
    exit 1
fi
echo "benchsmoke: OK — within ${TOL}% of $base_desc"
