#!/usr/bin/env bash
# benchsmoke.sh — fail on a >5% throughput regression in the guarded hot
# paths: the sharded memory front-end (BenchmarkShardedThroughput,
# telemetry always on), the batched ring front-end
# (BenchmarkBatchedThroughput, the same traffic through per-shard request
# rings and group windows), the same batched traffic with the patrol
# scrubber active (BenchmarkMigrationOverhead — its baseline line equals
# batched-8g's, so the tolerance directly bounds the scrubbing overhead),
# and the codec datapath (BenchmarkEncode / BenchmarkDecode for the COP-4
# and COP-8 geometries, the word-parallel encode/decode the whole
# simulator sits on), plus the networked service datapath
# (BenchmarkServeThroughput — client batch frames over a loopback HTTP
# listener into server-side group windows).
#
# Primary comparison is self-calibrating: the same benchmarks are built and
# run from the merge-base commit in a temporary git worktree on the SAME
# machine, so CI-runner speed differences cancel out ("before/after").
# When no merge-base is available (shallow clone, first commit), or the
# base predates a benchmark, the committed reference number in
# scripts/benchsmoke.baseline is used for that benchmark instead; those
# numbers were measured on the reference dev container, so
# BENCHSMOKE_TOLERANCE_PCT can be raised for slower machines.
#
# Environment knobs:
#   BENCHSMOKE_TOLERANCE_PCT  allowed regression percentage (default 5)
#   BENCHSMOKE_COUNT          bench repetitions, best-of (default 5)
#   BENCHSMOKE_BENCHTIME      go test -benchtime (default 1s)
set -euo pipefail

TOL="${BENCHSMOKE_TOLERANCE_PCT:-5}"
COUNT="${BENCHSMOKE_COUNT:-5}"
BENCHTIME="${BENCHSMOKE_BENCHTIME:-1s}"
REPO="$(cd "$(dirname "$0")/.." && pwd)"

# Guarded benchmarks. Keys are the benchmark path minus the "Benchmark"
# prefix and match both the output lines and scripts/benchsmoke.baseline.
# sharded-8g-traceoff is the same traffic with an execution-trace recorder
# attached but disabled — it pins the disabled-tracing overhead.
SHARD_KEYS="ShardedThroughput/sharded-8g ShardedThroughput/sharded-8g-traceoff BatchedThroughput/batched-8g MigrationOverhead/scrub-8g"
CODEC_KEYS="Encode/COP-4 Encode/COP-8 Decode/COP-4 Decode/COP-8"
SERVE_KEYS="ServeThroughput/serve-8g ServeThroughput/serve-pipelined-8g"

# bench_out DIR PKG PATTERN — run the benchmarks, print raw output.
bench_out() {
    (cd "$1" && go test -run '^$' -bench "$3" -benchtime "$BENCHTIME" -count "$COUNT" "$2" 2>/dev/null) || true
}

# best FILE KEY — best (minimum) ns/op for KEY over all repetitions. The
# name column is "Benchmark<key>" plus a "-<procs>" suffix that go test
# omits when GOMAXPROCS is 1, so accept both forms — but only a purely
# numeric suffix, so "sharded-8g" does not swallow "sharded-8g-traceoff".
best() {
    awk -v k="Benchmark$2" '
        $1 == k { print $3; next }
        index($1, k "-") == 1 && substr($1, length(k) + 2) ~ /^[0-9]+$/ { print $3 }
    ' "$1" | sort -n | head -n1
}

collect() { # collect DIR OUTFILE — run every guarded group in DIR
    bench_out "$1" . 'BenchmarkShardedThroughput/sharded-8g|BenchmarkBatchedThroughput/batched-8g|BenchmarkMigrationOverhead/scrub-8g' >"$2"
    bench_out "$1" ./internal/core 'BenchmarkEncode$|BenchmarkDecode$' >>"$2"
    bench_out "$1" ./internal/copnet 'BenchmarkServeThroughput' >>"$2"
}

after_out="$(mktemp)"
before_out="$(mktemp)"
trap 'rm -f "$after_out" "$before_out"' EXIT
collect "$REPO" "$after_out"

have_base=""
base="$(git -C "$REPO" merge-base HEAD origin/main 2>/dev/null || git -C "$REPO" rev-parse HEAD~1 2>/dev/null || true)"
if [ -n "$base" ] && [ "$base" != "$(git -C "$REPO" rev-parse HEAD)" ]; then
    wt="$(mktemp -d)"
    trap 'git -C "$REPO" worktree remove --force "$wt" >/dev/null 2>&1 || rm -rf "$wt"; rm -f "$after_out" "$before_out"' EXIT
    if git -C "$REPO" worktree add --detach "$wt" "$base" >/dev/null 2>&1; then
        collect "$wt" "$before_out"
        have_base="merge-base $(git -C "$REPO" rev-parse --short "$base")"
    fi
fi

fail=0
for key in $SHARD_KEYS $CODEC_KEYS $SERVE_KEYS; do
    after="$(best "$after_out" "$key")"
    if [ -z "$after" ]; then
        echo "benchsmoke: no benchmark output for $key" >&2
        fail=1
        continue
    fi
    before=""
    base_desc=""
    if [ -n "$have_base" ]; then
        # A base that predates this benchmark falls through to the baseline.
        before="$(best "$before_out" "$key")"
        base_desc="$have_base"
    fi
    if [ -z "$before" ]; then
        before="$(awk -v k="$key" '$1 == k { print $2 }' "$REPO/scripts/benchsmoke.baseline")"
        base_desc="committed baseline"
    fi
    if [ -z "$before" ]; then
        echo "benchsmoke: no reference number for $key" >&2
        fail=1
        continue
    fi
    limit=$(( ${before%.*} + ${before%.*} * TOL / 100 ))
    echo "benchsmoke: $key  HEAD $after ns/op  vs  $base_desc $before ns/op (best of $COUNT)"
    if [ "${after%.*}" -gt "$limit" ]; then
        echo "benchsmoke: FAIL — $key: $after ns/op exceeds $base_desc $before ns/op by more than ${TOL}% (limit $limit)" >&2
        fail=1
    fi
done

if [ "$fail" -ne 0 ]; then
    exit 1
fi
echo "benchsmoke: OK — all guarded benchmarks within ${TOL}% of reference"
