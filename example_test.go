package cop_test

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"cop"
)

// ExampleNewCodec shows the core COP flow: encode, corrupt, detect,
// correct — with no compression-tracking metadata anywhere.
func ExampleNewCodec() {
	codec := cop.NewCodec(cop.Config4())

	// Eight pointers into one heap region: MSB compression removes the
	// shared high bits, freeing room for four SECDED code words.
	block := make([]byte, cop.BlockBytes)
	for i := 0; i < 8; i++ {
		binary.BigEndian.PutUint64(block[8*i:], 0x00007F00_20000000|uint64(i)*0x40)
	}
	image, status := codec.Encode(block)
	fmt.Println("stored:", status)

	image[5] ^= 0x10 // soft error in DRAM

	got, info, err := codec.Decode(image)
	fmt.Println("detected as compressed:", info.Compressed)
	fmt.Println("corrected and intact:", err == nil && bytes.Equal(got, block))
	// Output:
	// stored: compressed
	// detected as compressed: true
	// corrected and intact: true
}

// ExampleCodec_Classify shows the writeback-time classification that also
// drives the LLC's alias bit.
func ExampleCodec_Classify() {
	codec := cop.NewCodec(cop.Config4())

	zeros := make([]byte, cop.BlockBytes)
	fmt.Println("zero block:", codec.Classify(zeros))

	// A high-entropy block: every 32-bit word distinct and irregular.
	noisy := make([]byte, cop.BlockBytes)
	x := uint32(0x9E3779B9)
	for i := 0; i < 16; i++ {
		x ^= x << 13
		x ^= x >> 17
		x ^= x << 5
		binary.BigEndian.PutUint32(noisy[4*i:], x)
	}
	fmt.Println("noisy block:", codec.Classify(noisy))
	// Output:
	// zero block: compressed
	// noisy block: raw
}

// ExampleNewMemory shows the end-to-end protected memory with COP-ER
// (full coverage, incompressible blocks included).
func ExampleNewMemory() {
	mem := cop.NewMemory(cop.MemoryConfig{Mode: cop.ModeCOPER})

	data := make([]byte, cop.BlockBytes)
	copy(data, "the quick brown fox jumps over the lazy dog; pack my box with")

	mem.Write(0x4000, data)
	mem.Flush()                  // settle the LLC into DRAM images
	mem.InjectBitFlip(0x4000, 9) // soft error

	got, err := mem.Read(0x4000)
	fmt.Println("read ok:", err == nil)
	fmt.Println("data intact:", bytes.Equal(got, data))
	fmt.Println("errors corrected:", mem.Stats().CorrectedErrors)
	// Output:
	// read ok: true
	// data intact: true
	// errors corrected: 1
}

// ExampleRunExperiment regenerates a paper artifact programmatically.
func ExampleRunExperiment() {
	report, err := cop.RunExperiment("dimmcmp", cop.ExperimentOptions{})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(report.ID, "rows:", len(report.Rows))
	// Output:
	// dimmcmp rows: 2
}

// ExampleNewChipkillCodec shows the future-work extension: surviving a
// whole dead DRAM chip.
func ExampleNewChipkillCodec() {
	ck := cop.NewChipkillCodec()

	block := make([]byte, cop.BlockBytes)
	for i := 0; i < 8; i++ {
		binary.BigEndian.PutUint64(block[8*i:], 0x00005500_10000000|uint64(i)*8)
	}
	image, status := ck.Encode(block)
	fmt.Println("stored:", status)

	cop.FailChip(image, 3, 0xFF) // chip 3 dies: 8 bytes corrupted

	got, info, err := ck.Decode(image)
	fmt.Println("failed chip identified:", info.FailedChip)
	fmt.Println("reconstructed:", err == nil && bytes.Equal(got, block))
	// Output:
	// stored: protected
	// failed chip identified: 3
	// reconstructed: true
}
