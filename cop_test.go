package cop_test

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"

	"cop"
)

func pointerBlock(rng *rand.Rand) []byte {
	b := make([]byte, cop.BlockBytes)
	base := uint64(0x00007FAA_00000000)
	for i := 0; i < 8; i++ {
		binary.BigEndian.PutUint64(b[8*i:], base|uint64(rng.Intn(1<<24)))
	}
	return b
}

func TestPublicCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	codec := cop.NewCodec(cop.Config4())
	block := pointerBlock(rng)
	image, status := codec.Encode(block)
	if status != cop.StoredCompressed {
		t.Fatalf("status = %v", status)
	}
	got, info, err := codec.Decode(image)
	if err != nil || !info.Compressed {
		t.Fatalf("decode: %v %+v", err, info)
	}
	if !bytes.Equal(got, block) {
		t.Fatal("round trip mismatch")
	}
}

func TestPublicERCodec(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	er := cop.NewERCodec(cop.Config4())
	raw := make([]byte, cop.BlockBytes)
	rng.Read(raw)
	image, ptr, compressed, err := er.Write(raw, cop.NoPointer)
	if err != nil {
		t.Fatal(err)
	}
	if compressed {
		t.Skip("random block happened to compress")
	}
	if ptr == cop.NoPointer {
		t.Fatal("incompressible block needs an entry")
	}
	got, _, err := er.Read(image)
	if err != nil || !bytes.Equal(got, raw) {
		t.Fatalf("ER round trip: %v", err)
	}
}

func TestPublicMemory(t *testing.T) {
	mem := cop.NewMemory(cop.MemoryConfig{Mode: cop.ModeCOPER, LLCBytes: 32 * 1024, LLCWays: 8})
	rng := rand.New(rand.NewSource(3))
	want := pointerBlock(rng)
	if err := mem.Write(0x1000, want); err != nil {
		t.Fatal(err)
	}
	if err := mem.Flush(); err != nil {
		t.Fatal(err)
	}
	mem.InjectBitFlip(0x1000, 17)
	got, err := mem.Read(0x1000)
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("fault not corrected: %v", err)
	}
}

func TestPublicExperiments(t *testing.T) {
	ids := cop.Experiments()
	if len(ids) != 20 {
		t.Fatalf("expected 20 experiments, got %v", ids)
	}
	r, err := cop.RunExperiment("alias", cop.ExperimentOptions{AliasSamples: 50000})
	if err != nil || len(r.Rows) == 0 {
		t.Fatalf("alias experiment: %v", err)
	}
}

func TestPublicWorkloads(t *testing.T) {
	all := cop.Workloads()
	if len(all) < 30 {
		t.Fatalf("only %d workloads registered", len(all))
	}
	p, err := cop.Workload("mcf")
	if err != nil || p.Name != "mcf" {
		t.Fatalf("lookup: %v", err)
	}
	custom, err := cop.RegisterWorkload(cop.WorkloadProfile{
		Name:            "public-api-app",
		Mix:             cop.ContentMix{Text: 1},
		FootprintBlocks: 100,
		MPKI:            1,
		PerfectIPC:      2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(custom.Block(0, 0)) != cop.BlockBytes {
		t.Fatal("custom profile unusable")
	}
}

func TestPublicByteAccess(t *testing.T) {
	mem := cop.NewMemory(cop.MemoryConfig{Mode: cop.ModeCOP, LLCBytes: 8192, LLCWays: 4})
	msg := []byte("unaligned protected bytes")
	if err := mem.WriteBytes(0x123, msg); err != nil {
		t.Fatal(err)
	}
	got, err := mem.ReadBytes(0x123, len(msg))
	if err != nil || !bytes.Equal(got, msg) {
		t.Fatalf("byte access: %v", err)
	}
}
