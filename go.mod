module cop

go 1.22
