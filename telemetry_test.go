package cop_test

// Tests for the unified telemetry API at the public surface: the
// sharded/unsharded snapshot byte-identity guarantee and the zero-alloc
// hot-path guarantee (telemetry enabled, no subscriber).

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"

	"cop"
)

// driveTrace replays one deterministic single-threaded trace — mixed
// compressible/incompressible writes over a footprint larger than the
// LLC, then a read sweep — through any memory front-end.
func driveTrace(t *testing.T, write func(uint64, []byte) error, read func(uint64) ([]byte, error)) {
	t.Helper()
	rng := rand.New(rand.NewSource(0x7E1E))
	const blocks = 2048
	buf := make([]byte, cop.BlockBytes)
	for i := 0; i < blocks; i++ {
		if i%4 == 0 {
			rng.Read(buf)
		} else {
			for w := 0; w < 8; w++ {
				binary.BigEndian.PutUint64(buf[8*w:], 0x00007F00_00000000|uint64(rng.Intn(1<<20)))
			}
		}
		if err := write(uint64(i)*cop.BlockBytes, buf); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3*blocks; i++ {
		addr := uint64(rng.Intn(blocks)) * cop.BlockBytes
		if _, err := read(addr); err != nil {
			t.Fatal(err)
		}
	}
}

// TestShardedSnapshotByteIdentical is the issue's headline acceptance
// criterion: a sharded and an unsharded run of the same single-threaded
// trace must produce byte-identical JSON snapshots — every counter and
// histogram bucket merges exactly, and derived rates are recomputed after
// the merge.
func TestShardedSnapshotByteIdentical(t *testing.T) {
	memCfg := cop.MemoryConfig{Mode: cop.ModeCOP, LLCBytes: 64 * 1024, LLCWays: 8}

	single := cop.NewMemory(memCfg)
	driveTrace(t, single.Write, single.Read)
	want, err := single.Snapshot().JSON()
	if err != nil {
		t.Fatal(err)
	}

	for _, shards := range []int{2, 4, 8} {
		sharded, err := cop.NewShardedMemoryChecked(cop.ShardedMemoryConfig{Mem: memCfg, Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		driveTrace(t, sharded.Write, sharded.Read)
		got, err := sharded.Snapshot().JSON()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%d shards: snapshot JSON differs from unsharded:\n--- unsharded\n%s\n--- sharded\n%s", shards, want, got)
		}
	}
}

// TestSnapshotEquivalentAcrossFrontends checks that the controller and
// cache sections merge exactly in the region-backed modes too. (The region
// section itself is excluded: per-shard regions are independent instances,
// so their entry-block layout — and hence tree-block traffic and
// footprint — legitimately differs from one global region's.)
func TestSnapshotEquivalentAcrossFrontends(t *testing.T) {
	for _, mode := range []cop.MemoryMode{cop.ModeCOPER, cop.ModeCOPChipkill} {
		t.Run(mode.String(), func(t *testing.T) {
			memCfg := cop.MemoryConfig{Mode: mode, LLCBytes: 64 * 1024, LLCWays: 8}
			single := cop.NewMemory(memCfg)
			driveTrace(t, single.Write, single.Read)
			sharded := cop.NewShardedMemory(cop.ShardedMemoryConfig{Mem: memCfg, Shards: 4})
			driveTrace(t, sharded.Write, sharded.Read)

			a, b := single.Snapshot(), sharded.Snapshot()
			a.Region, b.Region = nil, nil
			a.Finalize()
			b.Finalize()
			aj, _ := a.JSON()
			bj, _ := b.JSON()
			if !bytes.Equal(aj, bj) {
				t.Errorf("controller/cache sections differ:\n--- unsharded\n%s\n--- sharded\n%s", aj, bj)
			}
		})
	}
}

// TestLegacyStatsMatchSnapshot pins the deprecation contract: the legacy
// Stats surfaces are thin wrappers over the snapshot, so both views of the
// same memory must agree.
func TestLegacyStatsMatchSnapshot(t *testing.T) {
	mem := cop.NewMemory(cop.MemoryConfig{Mode: cop.ModeCOP, LLCBytes: 64 * 1024, LLCWays: 8})
	driveTrace(t, mem.Write, mem.Read)
	legacy := mem.Stats()
	snap := mem.Snapshot()
	if legacy.Loads != snap.Controller.Loads ||
		legacy.Stores != snap.Controller.Stores ||
		legacy.StoredCompressed != snap.Controller.StoredCompressed ||
		legacy.StoredRaw != snap.Controller.StoredRaw ||
		legacy.CorrectedErrors != snap.Controller.CorrectedErrors {
		t.Errorf("legacy %+v disagrees with snapshot %+v", legacy, snap.Controller)
	}
}

// TestReadHotPathAllocs is the memory-hierarchy half of the zero-alloc
// guarantee: with telemetry always-on but no subscriber attached, an
// LLC-hit read performs exactly one allocation — the 64-byte result copy
// handed to the caller — i.e. the instrumentation itself allocates
// nothing. (The telemetry primitives' own 0-allocs guard lives in
// internal/telemetry.)
func TestReadHotPathAllocs(t *testing.T) {
	mem := cop.NewMemory(cop.MemoryConfig{Mode: cop.ModeCOP})
	data := make([]byte, cop.BlockBytes)
	if err := mem.Write(0, data); err != nil {
		t.Fatal(err)
	}
	if _, err := mem.Read(0); err != nil { // warm the LLC
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		if _, err := mem.Read(0); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 1 {
		t.Errorf("LLC-hit read: %v allocs/op, want 1 (the result copy)", allocs)
	}
}
