// Kvstore: a soft-error-protected in-memory key-value store built on the
// public API — the kind of component a commodity (non-ECC) server would
// host. Keys and values live in cop.Memory under COP-ER, so every byte is
// SECDED-protected with zero DRAM storage overhead for compressible data;
// the demo then bombards DRAM with bit flips and verifies every record.
package main

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"log"

	"cop"
)

// store is a log-structured KV store over protected memory: records are
// appended as [keyLen u16][valLen u32][key][val]; an in-(unprotected-)
// memory index maps keys to record offsets, standing in for the CPU-side
// structures a real service keeps in registers and caches.
type store struct {
	mem   *cop.Memory
	next  uint64
	index map[string]uint64
}

func newStore(mode cop.MemoryConfig) *store {
	return &store{mem: cop.NewMemory(mode), index: map[string]uint64{}}
}

func (s *store) Put(key string, value []byte) error {
	rec := make([]byte, 6+len(key)+len(value))
	binary.BigEndian.PutUint16(rec, uint16(len(key)))
	binary.BigEndian.PutUint32(rec[2:], uint32(len(value)))
	copy(rec[6:], key)
	copy(rec[6+len(key):], value)
	off := s.next
	if err := s.mem.WriteBytes(off, rec); err != nil {
		return err
	}
	s.index[key] = off
	s.next += uint64(len(rec))
	return nil
}

func (s *store) Get(key string) ([]byte, error) {
	off, ok := s.index[key]
	if !ok {
		return nil, fmt.Errorf("kvstore: %q not found", key)
	}
	hdr, err := s.mem.ReadBytes(off, 6)
	if err != nil {
		return nil, err
	}
	kl := int(binary.BigEndian.Uint16(hdr))
	vl := int(binary.BigEndian.Uint32(hdr[2:]))
	rec, err := s.mem.ReadBytes(off+6, kl+vl)
	if err != nil {
		return nil, err
	}
	if string(rec[:kl]) != key {
		return nil, fmt.Errorf("kvstore: index corruption for %q", key)
	}
	return rec[kl:], nil
}

func main() {
	s := newStore(cop.MemoryConfig{Mode: cop.ModeCOPER, LLCBytes: 64 * 1024, LLCWays: 8})

	// Populate: JSON-ish documents (text — TXT compression territory),
	// counters (small ints), and a binary blob (incompressible; COP-ER's
	// ECC region covers it).
	reference := map[string][]byte{}
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("user:%04d", i)
		val := []byte(fmt.Sprintf(`{"id":%d,"name":"user-%d","plan":"pro","quota_mb":%d}`, i, i, 512+i))
		reference[key] = val
		if err := s.Put(key, val); err != nil {
			log.Fatal(err)
		}
	}
	blob := make([]byte, 500)
	x := uint32(0x2545F491)
	for i := range blob {
		x ^= x << 13
		x ^= x >> 17
		x ^= x << 5
		blob[i] = byte(x)
	}
	reference["blob:entropy"] = blob
	if err := s.Put("blob:entropy", blob); err != nil {
		log.Fatal(err)
	}
	if err := s.mem.Flush(); err != nil {
		log.Fatal(err)
	}

	st := s.mem.Stats()
	fmt.Printf("stored %d records in %d blocks (%d compressed+protected, %d via ECC region)\n",
		len(reference), st.Writebacks, st.StoredCompressed, st.StoredRaw)

	// Soft-error storm: a flip in every DRAM block the store occupies.
	flips := 0
	for addr := uint64(0); addr < s.next+cop.BlockBytes; addr += cop.BlockBytes {
		if s.mem.InjectBitFlip(addr, int(addr>>6*31)%512) {
			flips++
		}
	}
	fmt.Printf("injected %d bit flips (one per block)\n", flips)

	// Verify every record.
	for key, want := range reference {
		got, err := s.Get(key)
		if err != nil {
			log.Fatalf("get %q: %v", key, err)
		}
		if !bytes.Equal(got, want) {
			log.Fatalf("%q corrupted!", key)
		}
	}
	fmt.Printf("all %d records intact; %d errors corrected, 0 silent corruptions\n",
		len(reference), s.mem.Stats().CorrectedErrors)
	fmt.Println("\nsame store on unprotected memory:")

	u := newStore(cop.MemoryConfig{Mode: cop.ModeUnprotected, LLCBytes: 64 * 1024, LLCWays: 8})
	for key, val := range reference {
		if err := u.Put(key, val); err != nil {
			log.Fatal(err)
		}
	}
	u.mem.Flush()
	for addr := uint64(0); addr < u.next+cop.BlockBytes; addr += cop.BlockBytes {
		u.mem.InjectBitFlip(addr, int(addr>>6*31)%512)
	}
	corrupted := 0
	for key, want := range reference {
		if got, err := u.Get(key); err != nil || !bytes.Equal(got, want) {
			corrupted++
		}
	}
	fmt.Printf("%d of %d records corrupted\n", corrupted, len(reference))
}
