// Textstore: a protected in-memory document store. ASCII (and
// ASCII-in-UTF-16) text is exactly what COP's TXT scheme targets — every
// byte has a zero MSB, freeing 64 bits per block — so documents get full
// SECDED protection with zero storage overhead. The demo stores a corpus,
// injects scattered soft errors into the DRAM images, and reads every
// document back intact.
package main

import (
	"fmt"
	"log"
	"strings"
	"unicode/utf16"

	"cop"
)

var corpus = map[string]string{
	"gettysburg": "Four score and seven years ago our fathers brought forth on this " +
		"continent, a new nation, conceived in Liberty, and dedicated to the " +
		"proposition that all men are created equal.",
	"lorem": strings.Repeat("Lorem ipsum dolor sit amet, consectetur adipiscing elit. ", 8),
	"config": "[server]\nlisten = 0.0.0.0:8080\nworkers = 16\n[cache]\nsize_mb = 512\n" +
		"policy = lru\n[log]\nlevel = info\npath = /var/log/app.log\n",
	"html": "<!DOCTYPE html><html><head><title>COP</title></head><body>" +
		"<h1>To Compress and Protect</h1><p>ISCA 2015</p></body></html>",
}

func main() {
	mem := cop.NewMemory(cop.MemoryConfig{Mode: cop.ModeCOP, LLCBytes: 16 * 1024, LLCWays: 4})

	// Lay the documents out in block-aligned extents; pad with spaces
	// (keeping every byte ASCII so whole blocks stay TXT-compressible).
	layout := map[string][2]uint64{} // name -> {addr, length}
	next := uint64(0)
	store := func(name string, data []byte) {
		layout[name] = [2]uint64{next, uint64(len(data))}
		for off := 0; off < len(data); off += cop.BlockBytes {
			block := make([]byte, cop.BlockBytes)
			for i := range block {
				block[i] = ' '
			}
			copy(block, data[off:min(len(data), off+cop.BlockBytes)])
			if err := mem.Write(next, block); err != nil {
				log.Fatal(err)
			}
			next += cop.BlockBytes
		}
	}
	for name, text := range corpus {
		store(name, []byte(text))
	}
	// UTF-16 text protects just as well: ASCII code points keep a zero
	// high byte, so all bytes stay below 0x80.
	u16 := utf16.Encode([]rune(corpus["gettysburg"]))
	u16bytes := make([]byte, 2*len(u16))
	for i, v := range u16 {
		u16bytes[2*i] = byte(v >> 8)
		u16bytes[2*i+1] = byte(v)
	}
	store("gettysburg-utf16", u16bytes)

	if err := mem.Flush(); err != nil {
		log.Fatal(err)
	}
	st := mem.Stats()
	fmt.Printf("stored %d documents in %d blocks: %d compressed+protected, %d raw\n",
		len(layout), st.Writebacks, st.StoredCompressed, st.StoredRaw)

	// Soft-error storm: one bit flip in every stored block.
	var flips int
	for addr := uint64(0); addr < next; addr += cop.BlockBytes {
		if mem.InjectBitFlip(addr, int(addr/cop.BlockBytes*7%512)) {
			flips++
		}
	}
	fmt.Printf("injected %d bit flips (one per block)\n", flips)

	// Read everything back.
	for name, ext := range layout {
		addr, length := ext[0], ext[1]
		var sb []byte
		for off := uint64(0); off < length; off += cop.BlockBytes {
			block, err := mem.Read(addr + off)
			if err != nil {
				log.Fatalf("%s: %v", name, err)
			}
			sb = append(sb, block...)
		}
		got := sb[:length]
		want := corpus[name]
		if name == "gettysburg-utf16" {
			want = corpus["gettysburg"]
			runes := make([]uint16, length/2)
			for i := range runes {
				runes[i] = uint16(got[2*i])<<8 | uint16(got[2*i+1])
			}
			got = []byte(string(utf16.Decode(runes)))
		}
		if string(got[:len(want)]) != want {
			log.Fatalf("%s: corrupted after injection!", name)
		}
		fmt.Printf("  %-18s %4d bytes — intact (errors corrected: %v)\n",
			name, length, mem.Stats().CorrectedErrors > 0)
	}
	fmt.Printf("\ntotal corrected errors: %d; silent corruptions: 0\n",
		mem.Stats().CorrectedErrors)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
