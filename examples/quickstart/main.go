// Quickstart: encode a block with COP, flip a bit "in DRAM", and watch the
// decoder transparently detect the protected block (no metadata!) and
// correct the error.
package main

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"log"

	"cop"
)

func main() {
	codec := cop.NewCodec(cop.Config4())

	// A typical pointer-laden block: eight addresses into the same heap
	// region. COP's MSB compression removes the shared high bits.
	block := make([]byte, cop.BlockBytes)
	for i := 0; i < 8; i++ {
		binary.BigEndian.PutUint64(block[8*i:], 0x00007F4A_10000000|uint64(i)*0x40)
	}

	image, status := codec.Encode(block)
	fmt.Printf("encode: %v\n", status) // compressed: 60 B data + 4 B ECC inline

	// A cosmic ray strikes bit 133 of the DRAM image.
	image[133/8] ^= 1 << (7 - 133%8)

	got, info, err := codec.Decode(image)
	if err != nil {
		log.Fatalf("decode: %v", err)
	}
	fmt.Printf("decode: compressed=%v validCodewords=%d correctedSegments=%v\n",
		info.Compressed, info.ValidCodewords, info.CorrectedSegments)
	if !bytes.Equal(got, block) {
		log.Fatal("data corrupted!")
	}
	fmt.Println("single-bit error corrected; data intact")

	// Incompressible data simply passes through unprotected — and the
	// decoder can still tell, because random data essentially never
	// contains 3 valid code words.
	random := make([]byte, cop.BlockBytes)
	for i := range random {
		random[i] = byte(i*37 + 11)
	}
	if _, status := codec.Encode(random); status == cop.StoredRaw {
		fmt.Println("incompressible block stored raw (unprotected), as expected")
	}
}
