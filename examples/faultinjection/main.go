// Fault injection: store a realistic mix of benchmark data in protected
// memory under every mode, bombard DRAM with random single-bit flips, and
// tally the outcomes — the end-to-end demonstration behind Figure 10's
// analytic model.
package main

import (
	"bytes"
	"fmt"
	"log"

	"cop"
	"cop/internal/workload"
)

const (
	blocks = 2048
	flips  = 3000
)

// xorshift PRNG (deterministic demo).
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s ^= r.s << 13
	r.s ^= r.s >> 7
	r.s ^= r.s << 17
	return r.s
}

func main() {
	p := workload.MustGet("gcc")
	fmt.Printf("workload: %s content model, %d blocks, %d injected bit flips per mode\n\n",
		p.Name, blocks, flips)
	fmt.Printf("%-12s %10s %10s %10s %10s\n",
		"mode", "corrected", "silent", "detected", "clean")

	for _, name := range []string{"unprotected", "cop", "cop-er", "ecc-region", "ecc-dimm"} {
		runMode(p, name)
	}
	fmt.Println("\nunprotected: every flip that lands on consumed data is silent corruption")
	fmt.Println("cop:         flips in compressed blocks corrected; raw blocks stay exposed")
	fmt.Println("cop-er:      every single-bit flip corrected (region covers raw blocks)")
}

func runMode(p *workload.Profile, name string) {
	var mode cop.MemoryConfig
	switch name {
	case "unprotected":
		mode.Mode = cop.ModeUnprotected
	case "cop":
		mode.Mode = cop.ModeCOP
	case "cop-er":
		mode.Mode = cop.ModeCOPER
	case "ecc-region":
		mode.Mode = cop.ModeECCRegion
	case "ecc-dimm":
		mode.Mode = cop.ModeECCDIMM
	}
	mode.LLCBytes = 64 * 1024
	mode.LLCWays = 8
	mem := cop.NewMemory(mode)

	// Populate and settle to DRAM.
	ref := make(map[uint64][]byte, blocks)
	for i := 0; i < blocks; i++ {
		addr := uint64(i) * cop.BlockBytes
		data := p.Block(addr, 0)
		ref[addr] = data
		if err := mem.Write(addr, data); err != nil {
			log.Fatal(err)
		}
	}
	if err := mem.Flush(); err != nil {
		log.Fatal(err)
	}

	// Inject flips into random resident blocks; read each back at once
	// (so flips do not accumulate into multi-bit errors) and classify.
	r := &rng{s: 0xFA117}
	var corrected, silent, detected, clean int
	for i := 0; i < flips; i++ {
		addr := (r.next() % blocks) * cop.BlockBytes
		bit := int(r.next() % (8 * cop.BlockBytes))
		if !mem.InjectBitFlip(addr, bit) {
			continue
		}
		before := mem.Stats().CorrectedErrors
		got, err := mem.Read(addr)
		switch {
		case err != nil:
			detected++ // uncorrectable but not silent
		case !bytes.Equal(got, ref[addr]):
			silent++
		case mem.Stats().CorrectedErrors > before:
			corrected++
		default:
			clean++ // flip landed on a dead copy (e.g. block was re-fetched clean)
		}
		// Restore DRAM to a clean image for the next trial: evict the
		// (clean) line and undo the flip if it is still latent.
		mem.LLC().Evict(addr)
		if err == nil && bytes.Equal(got, ref[addr]) && mem.Stats().CorrectedErrors == before {
			// nothing consumed the flip: revert it
			mem.InjectBitFlip(addr, bit)
		} else if err != nil || !bytes.Equal(got, ref[addr]) {
			// image is corrupted; rewrite it wholesale
			if werr := mem.Write(addr, ref[addr]); werr != nil {
				log.Fatal(werr)
			}
			if werr := mem.Flush(); werr != nil {
				log.Fatal(werr)
			}
		} else {
			// corrected on read: DRAM still holds the flipped bit (the
			// controller does not scrub); revert it
			mem.InjectBitFlip(addr, bit)
		}
	}
	fmt.Printf("%-12s %10d %10d %10d %10d\n", name, corrected, silent, detected, clean)
}
