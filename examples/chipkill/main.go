// Chipkill: the paper's future-work extension in action. A whole ×8 DRAM
// chip dies — eight bytes of every block — and COP-CK reconstructs every
// compressible block from its compression-funded chip parity, with zero
// storage overhead and no ECC DIMM.
package main

import (
	"bytes"
	"fmt"
	"log"

	"cop"
	"cop/internal/workload"
)

const blocks = 1024

func main() {
	ck := cop.NewChipkillCodec()

	// Coverage depends on how far data compresses: the 10-byte chipkill
	// budget (parity + CRC) is easy for pointers and integers, hard for
	// floats whose words share only their exponents.
	fmt.Println("COP-CK (inline only):")
	for _, name := range []string{"mcf", "gcc", "lbm"} {
		demo(ck, workload.MustGet(name))
	}
	fmt.Println("\ncoverage tracks compressibility at the steeper 15.6% target: the")
	fmt.Println("trade-off §3.1 describes (more ECC ⇒ fewer protectable blocks),")
	fmt.Println("pushed to chipkill strength. For comparison, conventional (72,64)")
	fmt.Println("SECDED — even on an ECC DIMM — cannot correct a chip failure at all.")

	// COP-CK-ER closes the gap: incompressible blocks get dual region
	// pointers + externally stored parity, so everything survives.
	fmt.Println("\nCOP-CK-ER (region-backed, full coverage):")
	for _, name := range []string{"mcf", "lbm"} {
		demoER(workload.MustGet(name))
	}
}

func demoER(p *workload.Profile) {
	er := cop.NewChipkillERCodec()
	type stored struct{ plain, image []byte }
	var set []stored
	inline := 0
	for i := 0; i < blocks/4; i++ {
		b := p.Block(uint64(i)*cop.BlockBytes, 0)
		img, _, isInline, err := er.Write(b, cop.NoPointer)
		if err != nil {
			log.Fatal(err)
		}
		if isInline {
			inline++
		}
		set = append(set, stored{b, img})
	}
	recovered, trials := 0, 0
	for chip := 0; chip < 8; chip++ {
		for _, s := range set {
			img := append([]byte(nil), s.image...)
			cop.FailChip(img, chip, 0xA5)
			got, _, err := er.Read(img)
			trials++
			if err == nil && bytes.Equal(got, s.plain) {
				recovered++
			}
		}
	}
	fmt.Printf("%-6s %4d blocks (%d inline, %d via region)  chip-failure recovery: %d/%d\n",
		p.Name, len(set), inline, len(set)-inline, recovered, trials)
}

func demo(ck *cop.ChipkillCodec, p *workload.Profile) {
	type stored struct {
		plain []byte
		image []byte
	}
	var protectedSet []stored
	for i := 0; i < blocks; i++ {
		b := p.Block(uint64(i)*cop.BlockBytes, 0)
		if img, status := ck.Encode(b); status.String() == "protected" {
			protectedSet = append(protectedSet, stored{b, img})
		}
	}
	fmt.Printf("%-6s %4d/%d blocks protected (%.1f%%)  ", p.Name,
		len(protectedSet), blocks, 100*float64(len(protectedSet))/blocks)

	// Kill every chip in turn across the protected set.
	recovered, trials := 0, 0
	for chip := 0; chip < 8; chip++ {
		for _, s := range protectedSet {
			img := append([]byte(nil), s.image...)
			cop.FailChip(img, chip, 0xA5)
			got, info, err := ck.Decode(img)
			if err != nil {
				log.Fatalf("chip %d: %v", chip, err)
			}
			if info.FailedChip != chip {
				log.Fatalf("chip %d misidentified as %d", chip, info.FailedChip)
			}
			trials++
			if bytes.Equal(got, s.plain) {
				recovered++
			}
		}
	}
	fmt.Printf("chip-failure recovery: %d/%d\n", recovered, trials)
}
