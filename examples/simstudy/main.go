// Simstudy: drive the interval simulator directly — the programmable
// counterpart of Figure 11. Pick benchmarks for the four cores, sweep the
// protection schemes (and a decoder-latency sensitivity), and print
// normalized IPC.
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"cop/internal/sim"
)

func main() {
	var (
		benchList = flag.String("bench", "mcf,gcc,lbm,xalancbmk", "comma-separated benchmarks (1 or 4)")
		epochs    = flag.Int("epochs", 2000, "epochs per core")
	)
	flag.Parse()
	benches := strings.Split(*benchList, ",")

	fmt.Printf("4-core interval simulation, %d epochs/core, workloads: %s\n\n",
		*epochs, *benchList)

	schemes := []sim.Scheme{sim.Unprotected, sim.COP, sim.COPER, sim.ECCRegion, sim.VECC, sim.ECCDIMM}
	var base float64
	fmt.Printf("%-10s %8s %10s %12s %14s\n", "scheme", "IPC", "normalized", "L3 misses", "extra accesses")
	for _, s := range schemes {
		cfg := sim.DefaultConfig(s)
		cfg.EpochsPerCore = *epochs
		res, err := sim.Run(cfg, benches...)
		if err != nil {
			log.Fatal(err)
		}
		if s == sim.Unprotected {
			base = res.IPC
		}
		fmt.Printf("%-10s %8.3f %10.3f %12d %14d\n",
			s, res.IPC, res.IPC/base, res.Misses, res.ExtraAccesses)
	}

	fmt.Println("\ndecoder-latency sensitivity (COP):")
	fmt.Printf("%-12s %10s\n", "latency", "normalized")
	for _, lat := range []uint64{0, 4, 16, 64} {
		cfg := sim.DefaultConfig(sim.COP)
		cfg.EpochsPerCore = *epochs
		cfg.DecompressLatency = lat
		if lat == 0 {
			cfg.DecompressLatency = 1 // 0 means "default"; use 1 as the floor
		}
		res, err := sim.Run(cfg, benches...)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12d %10.3f\n", cfg.DecompressLatency, res.IPC/base)
	}
	fmt.Println("\nthe paper's 4-cycle decoder costs ~1% — hidden behind DRAM latency")
}
